// Package memsys simulates the X-Gene2 memory hierarchy the paper's
// workloads execute on: eight 2.4 GHz cores with private L1 caches, shared
// L2 slices, and four DDR3 memory-controller units (MCUs), one DIMM each.
//
// The simulator is functional, not cycle-accurate: it tracks hit/miss
// behaviour, row-buffer locality and queueing pressure well enough to
// produce the hardware performance counters (the paper's 247 perf features)
// and the DRAM traffic statistics (access rate, row activation rate) that
// drive the reliability model.
package memsys

// CacheConfig sizes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line size (64 B throughout the platform)
}

// Valid reports whether the configuration is well-formed.
func (c CacheConfig) Valid() bool {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return false
	}
	lines := c.SizeBytes / c.LineBytes
	sets := lines / c.Ways
	return lines > 0 && sets > 0 && sets&(sets-1) == 0 && c.LineBytes&(c.LineBytes-1) == 0
}

// CacheStats counts the events of one cache instance.
type CacheStats struct {
	ReadHits    uint64
	ReadMisses  uint64
	WriteHits   uint64
	WriteMisses uint64
	Writebacks  uint64
}

// Accesses returns the total access count.
func (s CacheStats) Accesses() uint64 {
	return s.ReadHits + s.ReadMisses + s.WriteHits + s.WriteMisses
}

// Misses returns the total miss count.
func (s CacheStats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// MissRate returns misses/accesses, or 0 when idle.
func (s CacheStats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(a)
}

// cacheLine is one way of one set.
type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint32 // last-touch tick for LRU replacement
}

// Cache is a set-associative write-back, write-allocate cache with LRU
// replacement.
type Cache struct {
	cfg      CacheConfig
	sets     int
	setShift uint
	setMask  uint64
	lines    []cacheLine // sets*ways, set-major
	tick     uint32
	Stats    CacheStats
}

// NewCache builds a cache. It panics on invalid configuration (a build-time
// error in this codebase, never a runtime condition).
func NewCache(cfg CacheConfig) *Cache {
	if !cfg.Valid() {
		panic("memsys: invalid cache config")
	}
	sets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: shift,
		setMask:  uint64(sets - 1),
		lines:    make([]cacheLine, sets*cfg.Ways),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	Hit bool
	// Writeback is true when a dirty victim line was evicted; the
	// victim's address is then in WritebackAddr.
	Writeback     bool
	WritebackAddr uint64
}

// Access performs a read or write of the line containing addr. It returns
// whether the access hit and whether a dirty eviction occurred.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.tick++
	set := int((addr >> c.setShift) & c.setMask)
	tag := addr >> c.setShift
	base := set * c.cfg.Ways
	ways := c.lines[base : base+c.cfg.Ways]

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.tick
			if write {
				ways[i].dirty = true
				c.Stats.WriteHits++
			} else {
				c.Stats.ReadHits++
			}
			return AccessResult{Hit: true}
		}
	}
	// Miss: find victim (invalid first, else LRU).
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	res := AccessResult{}
	if ways[victim].valid && ways[victim].dirty {
		// The stored tag is the full line number (addr >> setShift), so
		// shifting it back reconstructs the victim's line address.
		res.Writeback = true
		res.WritebackAddr = ways[victim].tag << c.setShift
		c.Stats.Writebacks++
	}
	ways[victim] = cacheLine{tag: tag, valid: true, dirty: write, lru: c.tick}
	if write {
		c.Stats.WriteMisses++
	} else {
		c.Stats.ReadMisses++
	}
	return res
}

// Flush invalidates every line, returning the number of dirty lines that
// would be written back.
func (c *Cache) Flush() int {
	dirty := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			dirty++
		}
		c.lines[i] = cacheLine{}
	}
	return dirty
}
