package memsys

import (
	"testing"
	"testing/quick"
)

func TestCacheConfigValid(t *testing.T) {
	good := CacheConfig{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}
	if !good.Valid() {
		t.Fatal("valid config rejected")
	}
	bad := []CacheConfig{
		{SizeBytes: 0, Ways: 8, LineBytes: 64},
		{SizeBytes: 32 << 10, Ways: 0, LineBytes: 64},
		{SizeBytes: 32 << 10, Ways: 8, LineBytes: 0},
		{SizeBytes: 3000, Ways: 3, LineBytes: 64},     // non power-of-two sets
		{SizeBytes: 32 << 10, Ways: 8, LineBytes: 48}, // non power-of-two line
	}
	for i, c := range bad {
		if c.Valid() {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64})
	if c.Access(0x1000, false).Hit {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000, false).Hit {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1020, false).Hit {
		t.Fatal("same-line access missed")
	}
	if c.Stats.ReadHits != 2 || c.Stats.ReadMisses != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache: three conflicting lines evict the least recently used.
	c := NewCache(CacheConfig{SizeBytes: 128, Ways: 2, LineBytes: 64})
	// Only 1 set: every line conflicts.
	c.Access(0<<6, false)
	c.Access(1<<6, false)
	c.Access(0<<6, false) // line 0 is now MRU
	c.Access(2<<6, false) // evicts line 1
	if !c.Access(0<<6, false).Hit {
		t.Fatal("MRU line evicted")
	}
	if c.Access(1<<6, false).Hit {
		t.Fatal("LRU line not evicted")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 128, Ways: 2, LineBytes: 64})
	c.Access(0<<6, true) // dirty
	c.Access(1<<6, false)
	res := c.Access(2<<6, false) // evicts dirty line 0
	if !res.Writeback {
		t.Fatal("dirty eviction produced no writeback")
	}
	if res.WritebackAddr != 0 {
		t.Fatalf("writeback addr = %#x, want 0", res.WritebackAddr)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestCacheWritebackAddrReconstruction(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1 << 12, Ways: 1, LineBytes: 64})
	// Direct-mapped: two addresses one cache-size apart conflict.
	const a = uint64(0x12340)
	b := a + 1<<12
	c.Access(a, true)
	res := c.Access(b, false)
	if !res.Writeback {
		t.Fatal("expected writeback")
	}
	if res.WritebackAddr != a&^63 {
		t.Fatalf("writeback addr %#x, want %#x", res.WritebackAddr, a&^63)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64})
	c.Access(0, true)
	c.Access(64, false)
	if dirty := c.Flush(); dirty != 1 {
		t.Fatalf("Flush dirty count = %d, want 1", dirty)
	}
	if c.Access(0, false).Hit {
		t.Fatal("flushed line still resident")
	}
}

func TestCacheStatsAggregation(t *testing.T) {
	s := CacheStats{ReadHits: 3, ReadMisses: 1, WriteHits: 2, WriteMisses: 4}
	if s.Accesses() != 10 || s.Misses() != 5 {
		t.Fatalf("aggregation wrong: %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", s.MissRate())
	}
	if (CacheStats{}).MissRate() != 0 {
		t.Fatal("idle miss rate != 0")
	}
}

// Property: cache contents are a function of the access sequence; replaying
// a sequence yields identical stats.
func TestCacheDeterministicProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		a := NewCache(CacheConfig{SizeBytes: 1 << 10, Ways: 4, LineBytes: 64})
		b := NewCache(CacheConfig{SizeBytes: 1 << 10, Ways: 4, LineBytes: 64})
		for _, x := range addrs {
			a.Access(uint64(x), x%3 == 0)
		}
		for _, x := range addrs {
			b.Access(uint64(x), x%3 == 0)
		}
		return a.Stats == b.Stats
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMCURowBuffer(t *testing.T) {
	m := &MCU{}
	lat1 := m.Access(0, false)  // cold: activation
	lat2 := m.Access(64, false) // same row: hit
	if m.Stats.Activations != 1 || m.Stats.RowBufferHits != 1 {
		t.Fatalf("row buffer stats: %+v", m.Stats)
	}
	if lat1 <= lat2 {
		t.Fatalf("activation latency %d should exceed row hit %d", lat1, lat2)
	}
	// A different row in the same bank forces a new activation.
	m.Access(1<<(rowBits+3), false)
	if m.Stats.Activations != 2 {
		t.Fatalf("activations = %d", m.Stats.Activations)
	}
}

func TestMCUBankParallelism(t *testing.T) {
	m := &MCU{}
	// Different banks keep independent open rows.
	m.Access(0<<rowBits, false)
	m.Access(1<<rowBits, false)
	m.Access(0<<rowBits, false)
	m.Access(1<<rowBits, false)
	if m.Stats.RowBufferHits != 2 {
		t.Fatalf("bank-parallel row hits = %d, want 2", m.Stats.RowBufferHits)
	}
}

func TestMCURowHitRate(t *testing.T) {
	m := &MCU{}
	m.Access(0, false)
	m.Access(64, true)
	m.Access(128, false)
	if got := m.Stats.RowHitRate(); got < 0.6 || got > 0.7 {
		t.Fatalf("row hit rate = %v, want 2/3", got)
	}
}

func TestSystemRoutesThroughHierarchy(t *testing.T) {
	s := NewSystem()
	// First touch: L1 miss, L2 miss, DRAM access.
	if !s.Access(0, 0x100000, false) {
		t.Fatal("cold access did not reach DRAM")
	}
	// Second touch: L1 hit.
	if s.Access(0, 0x100000, false) {
		t.Fatal("warm access reached DRAM")
	}
	if s.DRAMAccesses() != 1 {
		t.Fatalf("DRAM accesses = %d", s.DRAMAccesses())
	}
	if s.Core[0].MemReads != 2 {
		t.Fatalf("core reads = %d", s.Core[0].MemReads)
	}
}

func TestSystemMCUInterleaving(t *testing.T) {
	s := NewSystem()
	// Touch 4 consecutive lines: they must land on 4 different channels.
	for i := uint64(0); i < 4; i++ {
		s.Access(0, i*64, false)
	}
	for i := 0; i < NumMCUs; i++ {
		if s.MCUOf(i).Stats.Accesses() != 1 {
			t.Fatalf("channel %d accesses = %d, want 1", i, s.MCUOf(i).Stats.Accesses())
		}
	}
}

func TestSystemStallAccounting(t *testing.T) {
	s := NewSystem()
	s.Access(0, 0x40000, false) // DRAM access: large stall
	dramStall := s.Core[0].StallCycles
	if dramStall < dramCASLatency {
		t.Fatalf("DRAM stall %d below CAS latency", dramStall)
	}
	s.Access(0, 0x40000, false) // L1 hit: no extra stall
	if s.Core[0].StallCycles != dramStall {
		t.Fatal("L1 hit added stall cycles")
	}
}

func TestSystemComputeAdvancesIPC(t *testing.T) {
	s := NewSystem()
	s.Compute(2, 1000)
	if s.Core[2].Instructions != 1000 || s.Core[2].BusyCycles != 1000 {
		t.Fatalf("compute accounting: %+v", s.Core[2])
	}
	if ipc := s.Core[2].IPC(); ipc != 1 {
		t.Fatalf("pure-compute IPC = %v", ipc)
	}
}

func TestWallCyclesIsMaxOverCores(t *testing.T) {
	s := NewSystem()
	s.Compute(0, 100)
	s.Compute(1, 5000)
	if w := s.WallCycles(); w != 5000 {
		t.Fatalf("wall cycles = %d, want 5000 (busiest core)", w)
	}
}

func TestWallCyclesBandwidthStretch(t *testing.T) {
	s := NewSystem()
	// Generate heavy DRAM traffic from a single slow core so demand per
	// cycle exceeds the channel peak: wall time must stretch.
	addr := uint64(0)
	for i := 0; i < 50000; i++ {
		s.Access(0, addr, false)
		addr += 4096 // new line, new row: maximal pressure
	}
	busiest := s.Core[0].Cycles()
	if w := s.WallCycles(); w < busiest {
		t.Fatalf("wall cycles %d below busiest core %d", w, busiest)
	}
}

func TestCPIWeightsMemoryStalls(t *testing.T) {
	s := NewSystem()
	for i := 0; i < 1000; i++ {
		s.Access(0, uint64(i)*4096, false) // all DRAM misses
	}
	if cpi := s.CPI(); cpi < 50 {
		t.Fatalf("DRAM-bound CPI = %v, want >> 1", cpi)
	}
	s2 := NewSystem()
	s2.Compute(0, 1000)
	if cpi := s2.CPI(); cpi != 1 {
		t.Fatalf("compute-bound CPI = %v", cpi)
	}
}

func TestWallSecondsUsesCoreFrequency(t *testing.T) {
	s := NewSystem()
	s.Compute(0, 2_400_000)
	got := s.WallSeconds()
	if got < 0.0009 || got > 0.0011 {
		t.Fatalf("2.4M cycles = %v s, want ~1 ms", got)
	}
}
