package memsys

// Platform constants of the simulated X-Gene2 server.
const (
	NumCores    = 8
	NumMCUs     = 4
	CoreFreqHz  = 2.4e9
	LineBytes   = 64
	l1SizeBytes = 32 << 10  // 32 KiB L1D per core
	l2SizeBytes = 256 << 10 // 256 KiB L2 per core pair (PMD)
)

// CoreStats counts the per-core pipeline events.
type CoreStats struct {
	Instructions uint64 // retired instructions (including loads/stores)
	MemReads     uint64 // executed load instructions
	MemWrites    uint64 // executed store instructions
	BusyCycles   uint64 // base execution cycles
	StallCycles  uint64 // cycles waiting for the memory hierarchy
}

// Cycles is the total cycle count of the core.
func (c CoreStats) Cycles() uint64 { return c.BusyCycles + c.StallCycles }

// IPC returns instructions per cycle.
func (c CoreStats) IPC() float64 {
	cyc := c.Cycles()
	if cyc == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(cyc)
}

// System is the full memory hierarchy: per-core L1D caches, shared L2
// slices (one per core pair), and four MCUs selected by line interleaving.
type System struct {
	l1   [NumCores]*Cache
	l2   [NumCores / 2]*Cache
	mcus [NumMCUs]*MCU
	Core [NumCores]CoreStats
}

// NewSystem builds the hierarchy.
func NewSystem() *System {
	s := &System{}
	for i := range s.l1 {
		s.l1[i] = NewCache(CacheConfig{SizeBytes: l1SizeBytes, Ways: 8, LineBytes: LineBytes})
	}
	for i := range s.l2 {
		s.l2[i] = NewCache(CacheConfig{SizeBytes: l2SizeBytes, Ways: 8, LineBytes: LineBytes})
	}
	for i := range s.mcus {
		s.mcus[i] = &MCU{}
	}
	return s
}

// L1 returns core c's L1D cache (for stats inspection).
func (s *System) L1(c int) *Cache { return s.l1[c] }

// L2 returns slice i (core pair i) of the L2 (for stats inspection).
func (s *System) L2(i int) *Cache { return s.l2[i] }

// MCUOf returns channel i's controller (for stats inspection).
func (s *System) MCUOf(i int) *MCU { return s.mcus[i] }

// mcuIndex interleaves consecutive cache lines across the four channels.
func mcuIndex(addr uint64) int { return int((addr >> 6) & (NumMCUs - 1)) }

// Access executes one load or store on core tid. It updates the cache and
// MCU state and charges the core the access latency. It reports whether the
// access reached DRAM (an L2 miss).
func (s *System) Access(tid int, addr uint64, write bool) bool {
	core := tid % NumCores
	cs := &s.Core[core]
	cs.Instructions++
	cs.BusyCycles++
	if write {
		cs.MemWrites++
	} else {
		cs.MemReads++
	}

	if s.l1[core].Access(addr, write).Hit {
		cs.StallCycles += l1HitLatency
		return false
	}
	l2 := s.l2[core/2]
	r2 := l2.Access(addr, write)
	if r2.Writeback {
		// Dirty L2 victim goes to DRAM.
		s.mcus[mcuIndex(r2.WritebackAddr)].Access(r2.WritebackAddr, true)
	}
	if r2.Hit {
		cs.StallCycles += l2HitLatency
		return false
	}
	lat := s.mcus[mcuIndex(addr)].Access(addr, false)
	cs.StallCycles += uint64(lat)
	return true
}

// Compute charges core tid with n ALU/branch instructions at one IPC.
func (s *System) Compute(tid int, n int) {
	core := tid % NumCores
	s.Core[core].Instructions += uint64(n)
	s.Core[core].BusyCycles += uint64(n)
}

// WallCycles returns the simulated wall-clock duration in cycles: the
// busiest core bounds the run (threads execute concurrently), and a
// saturated DRAM channel stretches it further.
func (s *System) WallCycles() uint64 {
	var maxCyc uint64
	for i := range s.Core {
		if c := s.Core[i].Cycles(); c > maxCyc {
			maxCyc = c
		}
	}
	if maxCyc == 0 {
		return 0
	}
	// Bandwidth model: if any channel's line traffic exceeds its peak
	// service rate, the run stretches by the overload factor.
	stretch := 1.0
	for _, m := range s.mcus {
		demand := float64(m.Stats.Accesses()) / (float64(maxCyc) / 1000)
		if ratio := demand / mcuPeakLinesPerKCycle; ratio > stretch {
			stretch = ratio
		}
	}
	return uint64(float64(maxCyc) * stretch)
}

// WallSeconds converts WallCycles to seconds at the core frequency.
func (s *System) WallSeconds() float64 {
	return float64(s.WallCycles()) / CoreFreqHz
}

// TotalInstructions sums retired instructions over all cores.
func (s *System) TotalInstructions() uint64 {
	var n uint64
	for i := range s.Core {
		n += s.Core[i].Instructions
	}
	return n
}

// TotalMemAccesses sums load/store instructions over all cores.
func (s *System) TotalMemAccesses() uint64 {
	var n uint64
	for i := range s.Core {
		n += s.Core[i].MemReads + s.Core[i].MemWrites
	}
	return n
}

// DRAMAccesses sums line transfers over all channels.
func (s *System) DRAMAccesses() uint64 {
	var n uint64
	for _, m := range s.mcus {
		n += m.Stats.Accesses()
	}
	return n
}

// DRAMActivations sums row activations over all channels.
func (s *System) DRAMActivations() uint64 {
	var n uint64
	for _, m := range s.mcus {
		n += m.Stats.Activations
	}
	return n
}

// CPI returns the aggregate cycles-per-instruction of the run.
func (s *System) CPI() float64 {
	instr := s.TotalInstructions()
	if instr == 0 {
		return 0
	}
	var cyc uint64
	for i := range s.Core {
		cyc += s.Core[i].Cycles()
	}
	return float64(cyc) / float64(instr)
}
