package repro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each BenchmarkFigN/BenchmarkTableN measures the cost of
// reproducing that artifact end to end on the shared suite (profiles +
// characterization dataset are built once and reused, like a real campaign)
// and logs the regenerated rows.
//
// Run a single figure:  go test -bench=BenchmarkFig7 -benchtime=1x
// Run everything:       go test -bench=. -benchmem
//
// The suite runs kernels at profiling size with a 1/8-capacity DRAM
// simulation; see EXPERIMENTS.md for how that maps to the paper's numbers.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/serve"
	"repro/internal/workload"
)

var (
	suiteOnce sync.Once
	suiteVal  *exp.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *exp.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = exp.NewSuite(exp.Options{
			Size:  workload.SizeProfile,
			Scale: 8,
			Reps:  10,
			Seed:  0,
		})
		if suiteErr == nil {
			suiteErr = suiteVal.EnsureDataset()
		}
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

// benchTable runs one figure generator b.N times and logs the last result.
func benchTable(b *testing.B, fn func() (*exp.Table, error)) {
	s := benchSuite(b)
	_ = s
	b.ResetTimer()
	var tbl *exp.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = fn()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("\n%s", tbl.Render())
}

// BenchmarkFig2 regenerates Fig. 2: WER over a 2-hour run for memcached,
// backprop and the random micro-benchmark at 2.283 s / 70 °C.
func BenchmarkFig2(b *testing.B) { benchTable(b, benchSuite(b).Fig2) }

// BenchmarkFig4 regenerates Fig. 4: WER over time for all benchmarks at
// 2.283 s / 50 °C.
func BenchmarkFig4(b *testing.B) { benchTable(b, benchSuite(b).Fig4) }

// BenchmarkTable2 regenerates Table II: the average DRAM reuse time.
func BenchmarkTable2(b *testing.B) { benchTable(b, benchSuite(b).Table2) }

// BenchmarkFig7 regenerates Fig. 7: WER vs TREFP at 50/60/70 °C.
func BenchmarkFig7(b *testing.B) { benchTable(b, benchSuite(b).Fig7) }

// BenchmarkFig8 regenerates Fig. 8: WER per DIMM/rank.
func BenchmarkFig8(b *testing.B) { benchTable(b, benchSuite(b).Fig8) }

// BenchmarkFig9 regenerates Fig. 9: PUE per benchmark and per rank.
func BenchmarkFig9(b *testing.B) { benchTable(b, benchSuite(b).Fig9) }

// BenchmarkFig10 regenerates Fig. 10: feature correlations with WER/PUE.
func BenchmarkFig10(b *testing.B) { benchTable(b, benchSuite(b).Fig10) }

// BenchmarkFig11 regenerates Fig. 11: WER model accuracy (3 models x 3
// input sets, leave-one-workload-out).
func BenchmarkFig11(b *testing.B) { benchTable(b, benchSuite(b).Fig11) }

// BenchmarkFig12 regenerates Fig. 12: PUE model accuracy.
func BenchmarkFig12(b *testing.B) { benchTable(b, benchSuite(b).Fig12) }

// BenchmarkFig13 regenerates Fig. 13: the lulesh compiler-optimization
// case study against the conventional baseline.
func BenchmarkFig13(b *testing.B) { benchTable(b, benchSuite(b).Fig13) }

// BenchmarkVddStudy regenerates the Section V VDD-sensitivity finding.
func BenchmarkVddStudy(b *testing.B) { benchTable(b, benchSuite(b).VddStudy) }

// BenchmarkAblation regenerates the physics-channel ablation study: the
// attribution of each paper observation to a model channel (documented on
// exp.Suite.Ablation and in EXPERIMENTS.md's correspondence section).
func BenchmarkAblation(b *testing.B) { benchTable(b, benchSuite(b).Ablation) }

// BenchmarkPredictionLatency measures the deployed model's per-query cost —
// the paper's "predict DRAM errors within 300 ms" claim (Section VI-C).
func BenchmarkPredictionLatency(b *testing.B) {
	s := benchSuite(b)
	model, err := core.Train(s.Dataset, core.TargetWER, core.ModelKNN, core.InputSet1, 0)
	if err != nil {
		b.Fatal(err)
	}
	q := core.Query{
		Features: s.Profiles["srad(par)"].Features, TREFP: 2.283,
		VDD: dram.MinVDD, TempC: 60, Rank: core.RankDevice,
	}
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Predict(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		perQuery := time.Since(start) / time.Duration(b.N)
		if perQuery > 300*time.Millisecond {
			b.Fatalf("prediction took %v per query, paper promises < 300ms", perQuery)
		}
	}
}

// BenchmarkServePredict measures the serving path end to end: an HTTP
// round trip through the prediction service (profile cache and model
// registry warm after the first request), the deployment form of the
// paper's "predict DRAM errors within 300 ms" claim. Warm-cache latency
// must stay well under that budget.
func BenchmarkServePredict(b *testing.B) {
	s := benchSuite(b)
	srv := serve.New(s.Dataset, serve.Options{Seed: 0})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const body = `{"workload":"srad(par)","trefp":2.283,"temp_c":60}`
	post := func() serve.PredictResponse {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("predict status %d", resp.StatusCode)
		}
		var r serve.PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			b.Fatal(err)
		}
		return r
	}
	warm := post() // pays profiling + training once, like a deployed server
	if warm.WERMean <= 0 {
		b.Fatalf("implausible warm prediction %v", warm.WERMean)
	}
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
	b.StopTimer()
	if b.N > 0 {
		perQuery := time.Since(start) / time.Duration(b.N)
		b.ReportMetric(float64(perQuery.Microseconds())/1e3, "ms/query")
		if perQuery > 300*time.Millisecond {
			b.Fatalf("warm serve query took %v, paper promises < 300ms", perQuery)
		}
	}
}

// BenchmarkCampaignWorkers records the campaign engine's parallel speedup:
// the same Fig. 7-class characterization grid (4 benchmarks x 4 TREFP x 3
// temperatures, WER recording on) executed batch-wise on the device at 1,
// 2, 4 and GOMAXPROCS workers. The tables assembled from these runs are
// identical at every worker count; only the wall clock changes. On a
// 4-core runner workers=4 completes the grid in less than half the
// workers=1 time (see EXPERIMENTS.md for recorded numbers).
func BenchmarkCampaignWorkers(b *testing.B) {
	s := benchSuite(b)
	labels := []string{"backprop(par)", "memcached", "srad(par)", "kmeans(par)"}
	var jobs []dram.BatchJob
	for _, label := range labels {
		for _, trefp := range core.WERTrefps {
			for _, temp := range core.WERTemps {
				jobs = append(jobs, dram.BatchJob{
					Profile: s.Profiles[label].Access,
					Config: dram.RunConfig{
						TREFP: trefp, VDD: dram.MinVDD, TempC: temp, RecordWER: true,
					},
				})
			}
		}
	}
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Server.Device().RunBatch(jobs, engine.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCharacterizationRun measures one simulated 2-hour
// characterization experiment (the unit of campaign cost).
func BenchmarkCharacterizationRun(b *testing.B) {
	s := benchSuite(b)
	if err := s.Server.SetTREFP(2.283); err != nil {
		b.Fatal(err)
	}
	if err := s.Server.SetVDD(dram.MinVDD); err != nil {
		b.Fatal(err)
	}
	prof := s.Profiles["backprop(par)"].Access
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Server.Device().Run(prof, dram.RunConfig{
			TREFP: 2.283, VDD: dram.MinVDD, TempC: 60, RecordWER: true, Rep: i,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
