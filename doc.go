// Package repro is a full reproduction of "Workload-Aware DRAM Error
// Prediction using Machine Learning" (Mukhanov et al., IISWC 2019) as a
// pure-Go simulation stack.
//
// The original study characterizes DRAM error behaviour on a real ARMv8
// X-Gene2 server with 72 DDR3 chips operating under relaxed refresh period
// and lowered supply voltage at controlled temperatures, then trains
// machine-learning models to predict the word error rate (WER) and the
// crash probability (PUE) of arbitrary workloads from program-inherent
// features. This repository rebuilds every layer of that experiment in
// software:
//
//   - internal/engine  — deterministic parallel job executor: every
//     campaign-shaped loop (characterization runs, profiling passes,
//     CV folds, forest tree fits) fans out over a bounded worker pool
//     with job-keyed RNG derivation, so parallel results are
//     bit-identical to sequential ones
//   - internal/dram    — mechanistic DRAM reliability simulator (weak-cell
//     retention tails, variable retention time, true/anti cells,
//     neighbour-row disturbance, bitline-coupled pairs)
//   - internal/ecc     — real Hamming(72,64) SECDED decode (CE/UE/SDC)
//   - internal/memsys  — 8-core cache hierarchy and 4-channel MCU model
//   - internal/workload— the benchmark suite as real algorithms
//   - internal/profile — Treuse/HDP/249-feature extraction
//   - internal/thermal — PID-controlled DIMM thermal testbed
//   - internal/xgene   — the server platform (SLIMpro, crash-on-UE)
//   - internal/ml      — KNN, ε-SVR and random-forest regressors. The
//     inference hot path is allocation-free by contract: the trained
//     forest is fused into one contiguous struct-of-arrays ensemble
//     (parallel feature/cut/child arrays walked by index, all trees in
//     one arena), kNN keeps its training matrix flat and draws its
//     candidate scratch from a pool, and golden Float64bits tests pin
//     predictions bit-identical across layout changes
//   - internal/core    — the paper's contribution: the workload-aware
//     DRAM error model behind the unified Predictor API — a Target enum
//     (WER, PUE), one Query/Prediction pair (value, per-rank breakdown,
//     model metadata), and a Train(ds, target, kind, set, workers)
//     factory every cmd, example and serving handler goes through — plus
//     the paper's evaluation protocol
//   - internal/exp     — regeneration of every table and figure
//   - internal/serve   — the deployment layer: a long-running HTTP
//     prediction service over a saved dataset artifact. Two surfaces
//     share one resolve/predict path: /v2/predict (typed per-query
//     target selection, structured {code, field, message} errors,
//     artifact generation/fingerprint on every response) and the legacy
//     /v1 (pinned byte-for-byte by golden wire tests); a singleflight
//     model registry keyed (target, kind, input set) — a PUE-only query
//     never trains a WER model, and errors are never cached (a failed
//     fill clears and retries) — a workload profile cache, micro-batched
//     PredictBatch dispatch, a /metrics exposition, and generation-aware
//     hot reload: the dataset and all state derived from it swap
//     atomically on /v1/reload, SIGHUP or a -reload-interval poll, with a
//     persisted artifact fingerprint making unchanged reloads no-ops, and
//     GET /v2/stats exposing per-(target, kind, input set) serving
//     counters so an external client can reconcile its view with the
//     server's (cmd/dramserve is the entry point; API.md documents the
//     wire)
//   - internal/ingest  — the continuous data loop: a bounded-queue
//     telemetry intake with explicit backpressure (a full queue answers
//     429, never blocks), a deterministic per-feature distribution
//     sketch that scores live telemetry's drift from the serving
//     artifact's training distribution, and the retrain triggering
//     (row count, drift threshold, manual) that folds the buffer into
//     the dataset and republishes through serve's generation swap —
//     POST /v2/ingest and /v2/retrain on an -ingest dramserve
//   - internal/fleet   — the fleet-scale scenario: a deterministic,
//     seeded simulator of a heterogeneous datacenter (per-DIMM silicon
//     variation, diurnal ambient schedules through the thermal plant,
//     rotating workload mixes) that emits prediction queries paired with
//     ground-truth WER/PUE, plus the closed-loop driver that replays the
//     stream against a live server at a target QPS on the engine's
//     bounded workers — same seed, same stream, byte for byte — and, in
//     -ingest mode, reports each query's ground truth back to the
//     server, closing the retraining loop (cmd/dramfleet is the entry
//     point)
//   - internal/cluster — the horizontal-scale tier: a front router that
//     consistent-hashes model ownership across N dramserve backends,
//     with health-checked pool membership, bounded retry and hedging on
//     slow shards, and artifact-fingerprint consistency (responses never
//     blend two artifact generations) — serving the /v2 wire format
//     unchanged (cmd/dramrouter is the entry point)
//   - internal/policy — the closed control loop: mitigation policies
//     (static, threshold, risk-budget) that consume the server's /v2
//     predictions and act on the fleet — per-server TREFP retuning,
//     rank offlining with a capacity cost, job migration — plus the
//     deterministic policy-evaluation harness that scores a policy
//     against an un-actuated same-seed shadow fleet (avoided UEs and
//     crashes vs refresh/capacity/migration overhead, rendered as a
//     checksummed ledger, byte-identical at any worker count;
//     `dramfleet -policy` is the entry point)
//   - internal/cliflag — the flags shared by the dram* commands: the
//     dataset-acquisition set (-load/-save/-quick/-scale/...), the
//     -target selection over the unified prediction targets, the
//     -qps/-duration/-n load-volume pair of the closed-loop generators,
//     and the -pprof side listener for profiling a live process
//   - internal/benchmark — the benchmark trajectory: parses
//     `go test -bench` output into machine-classed snapshots
//     (BENCH_<goos>-<goarch>.json) and gates fresh runs against the
//     checked-in baseline — exact on hot-path allocation counts,
//     slack-factored on times (cmd/benchgate is the CLI,
//     scripts/bench.sh the harness, CI runs the check)
//
// See README.md for a tour and the package map, API.md for the serving
// wire format and the fleet determinism contract, and EXPERIMENTS.md for
// the paper-versus-reproduction numbers and the knob-by-knob setup
// correspondence. The benchmarks in bench_test.go regenerate each figure:
// go test -bench=Benchmark -benchtime=1x .
package repro
