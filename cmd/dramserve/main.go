// Command dramserve runs the prediction service: a long-running HTTP
// server that answers WER/PUE queries from a saved campaign dataset
// artifact, the deployment the paper describes (a periodically-updated
// model that predicts DRAM errors within 300 ms).
//
// Build the artifact once, then serve it:
//
//	dramtrain -quick -save dfault.json.gz
//	dramserve -load dfault.json.gz -addr :8080
//	curl -s localhost:8080/v1/predict -d '{"workload":"memcached","trefp":2.283,"temp_c":60}'
//
// Without -load it builds the campaign dataset in-process first (slow; use
// -quick for a demonstration corpus). Loading adopts the artifact's
// recorded build settings (profiling size, seed), so query-workload
// profiles stay commensurate with the training rows. SIGINT/SIGTERM drain
// in-flight requests and shut down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		camp     cliflag.Campaign
		drainFor = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	)
	camp.Register(flag.CommandLine)
	flag.Parse()

	ds, err := camp.Dataset(workload.ExtendedSet(), logf)
	if err != nil {
		fatal(err)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	srv := serve.New(ds, serve.Options{
		Quick:   camp.Quick,
		Seed:    camp.Seed,
		Workers: camp.Workers,
	})
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logf("signal received; draining for up to %v...", *drainFor)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logf("shutdown: %v", err)
		}
		// Only after the listener has drained: cancel the engine context
		// and wake any stragglers.
		srv.Close()
	}()

	logf("serving %d WER rows / %d PUE rows on %s", len(ds.WER), len(ds.PUE), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-shutdownDone
	logf("bye")
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dramserve: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dramserve:", err)
	os.Exit(1)
}
