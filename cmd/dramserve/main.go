// Command dramserve runs the prediction service: a long-running HTTP
// server that answers WER/PUE queries from a saved campaign dataset
// artifact, the deployment the paper describes (a periodically-updated
// model that predicts DRAM errors within 300 ms).
//
// Build the artifact once, then serve it:
//
//	dramtrain -quick -save dfault.json.gz
//	dramserve -load dfault.json.gz -addr :8080
//	curl -s localhost:8080/v2/predict --json '{"workload":"memcached","trefp":2.283,"temp_c":60,"targets":["wer"]}'
//	curl -s localhost:8080/v1/predict --json '{"workload":"memcached","trefp":2.283,"temp_c":60}'
//
// /v2/predict takes a per-query target selection and returns structured
// errors and artifact identity; /v1 is the pinned legacy surface; GET
// /v2/stats exposes per-(target, model, input set) serving counters so an
// external load generator (cmd/dramfleet) can reconcile its completed
// count with the server's. API.md documents all wire formats.
//
// Without -load it builds the campaign dataset in-process first (slow; use
// -quick for a demonstration corpus). Loading adopts the artifact's
// recorded build settings (profiling size, seed), so query-workload
// profiles stay commensurate with the training rows.
//
// The model is meant to be retrained periodically, so an artifact-backed
// server picks up a refreshed file without restarting, three ways:
//
//	curl -s -XPOST localhost:8080/v1/reload    # on demand
//	kill -HUP <pid>                            # from a retraining cron
//	dramserve -load ... -reload-interval 5m    # polled
//
// A reload whose artifact fingerprint matches the serving generation is a
// no-op; otherwise the new dataset swaps in atomically while in-flight
// queries finish on the generation they started with. SIGINT/SIGTERM drain
// in-flight requests and shut down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		camp     cliflag.Campaign
		prof     cliflag.Pprof
		drainFor = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
		reload   = flag.Duration("reload-interval", 0, "poll the -load artifact for changes this often (0 disables)")
	)
	camp.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	flag.Parse()

	if _, err := prof.Start(logf); err != nil {
		fatal(err)
	}

	ds, err := camp.Dataset(workload.ExtendedSet(), logf)
	if err != nil {
		fatal(err)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	srv := serve.New(ds, serve.Options{
		Quick:        camp.Quick,
		Seed:         camp.Seed,
		Workers:      camp.Workers,
		ArtifactPath: camp.Load,
	})
	defer srv.Close()

	// Hot reload is only meaningful for an artifact-backed server: a
	// campaign built in-process has no file to re-read.
	if camp.Load != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go reloadLoop(ctx, srv, camp.Load, *reload, hup)
	} else if *reload > 0 {
		logf("-reload-interval ignored without -load")
	}

	httpSrv := cliflag.HTTPServer(*addr, srv.Handler())
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logf("signal received; draining for up to %v...", *drainFor)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logf("shutdown: %v", err)
		}
		// Only after the listener has drained: cancel the engine context
		// and wake any stragglers.
		srv.Close()
	}()

	logf("serving %d WER rows / %d PUE rows on %s", len(ds.WER), len(ds.PUE), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-shutdownDone
	logf("bye")
}

// reloadLoop reloads the artifact on SIGHUP and, when interval > 0, on a
// timer. Failures are logged and the server keeps serving the current
// generation — a half-written artifact mid-retrain must never take the
// service down. Poll ticks stat the file first and skip the reload (a
// full decompress + parse + hash) while mtime and size are unchanged;
// SIGHUP always forces a real reload, and the fingerprint no-op inside
// Reload remains the correctness backstop when mtime does move.
func reloadLoop(ctx context.Context, srv *serve.Server, path string, interval time.Duration, hup <-chan os.Signal) {
	var tick <-chan time.Time
	if interval > 0 {
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
		logf("polling %s every %v", path, interval)
	}
	var seenMod time.Time
	var seenSize int64
	seen := false
	for {
		var why string
		// candMod/candSize hold the stat observed before this attempt;
		// they are committed to the seen-state only when the reload
		// succeeds, so a transient failure keeps the poll retrying, and a
		// file replaced mid-reload (stat predates the load) is re-checked
		// on the next tick with the fingerprint no-op as the backstop.
		var candMod time.Time
		var candSize int64
		haveCand := false
		select {
		case <-ctx.Done():
			return
		case <-hup:
			why = "SIGHUP"
		case <-tick:
			why = "poll"
			if fi, err := os.Stat(path); err == nil {
				if seen && fi.ModTime().Equal(seenMod) && fi.Size() == seenSize {
					continue
				}
				candMod, candSize, haveCand = fi.ModTime(), fi.Size(), true
			}
			// On a stat error fall through: Reload surfaces the real one.
		}
		res, err := srv.Reload(path)
		switch {
		case err != nil:
			seen = false // never let a failed attempt suppress retries
			logf("reload (%s): %v", why, err)
		case res.Swapped:
			logf("reload (%s): swapped in generation %d (%s) in %.1f ms",
				why, res.Generation, res.Fingerprint, res.ElapsedMS)
		default:
			logf("reload (%s): artifact unchanged (%s), still generation %d",
				why, res.Fingerprint, res.Generation)
		}
		if err == nil && haveCand {
			seenMod, seenSize, seen = candMod, candSize, true
		}
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dramserve: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dramserve:", err)
	os.Exit(1)
}
