// Command dramserve runs the prediction service: a long-running HTTP
// server that answers WER/PUE queries from a saved campaign dataset
// artifact, the deployment the paper describes (a periodically-updated
// model that predicts DRAM errors within 300 ms).
//
// Build the artifact once, then serve it:
//
//	dramtrain -quick -save dfault.json.gz
//	dramserve -load dfault.json.gz -addr :8080
//	curl -s localhost:8080/v2/predict --json '{"workload":"memcached","trefp":2.283,"temp_c":60,"targets":["wer"]}'
//	curl -s localhost:8080/v1/predict --json '{"workload":"memcached","trefp":2.283,"temp_c":60}'
//
// /v2/predict takes a per-query target selection and returns structured
// errors and artifact identity; /v1 is the pinned legacy surface; GET
// /v2/stats exposes per-(target, model, input set) serving counters so an
// external load generator (cmd/dramfleet) can reconcile its completed
// count with the server's. API.md documents all wire formats.
//
// Without -load it builds the campaign dataset in-process first (slow; use
// -quick for a demonstration corpus). Loading adopts the artifact's
// recorded build settings (profiling size, seed), so query-workload
// profiles stay commensurate with the training rows.
//
// The model is meant to be retrained periodically, so an artifact-backed
// server picks up a refreshed file without restarting, three ways:
//
//	curl -s -XPOST localhost:8080/v1/reload    # on demand
//	kill -HUP <pid>                            # from a retraining cron
//	dramserve -load ... -reload-interval 5m    # polled
//
// A reload whose artifact fingerprint matches the serving generation is a
// no-op; otherwise the new dataset swaps in atomically while in-flight
// queries finish on the generation they started with. SIGINT/SIGTERM drain
// in-flight requests and shut down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		camp     cliflag.Campaign
		prof     cliflag.Pprof
		ing      cliflag.Ingest
		drainFor = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
		reload   = flag.Duration("reload-interval", 0, "poll the -load artifact for changes this often (0 disables)")
	)
	camp.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	ing.Register(flag.CommandLine)
	flag.Parse()

	if _, err := prof.Start(logf); err != nil {
		fatal(err)
	}
	ingCfg, err := ing.Config()
	if err != nil {
		fatal(err)
	}

	ds, err := camp.Dataset(workload.ExtendedSet(), logf)
	if err != nil {
		fatal(err)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	srv := serve.New(ds, serve.Options{
		Quick:        camp.Quick,
		Seed:         camp.Seed,
		Workers:      camp.Workers,
		ArtifactPath: camp.Load,
		Ingest:       ingCfg,
	})
	defer srv.Close()
	if ingCfg != nil {
		logf("ingest enabled: capacity %d, retrain-rows %d, drift-threshold %g (min %d rows)",
			ingCfg.Capacity, ingCfg.RetrainRows, ingCfg.DriftThreshold, ingCfg.MinDriftRows)
	}

	// Hot reload is only meaningful for an artifact-backed server: a
	// campaign built in-process has no file to re-read.
	if camp.Load != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go reloadLoop(ctx, srv, camp.Load, *reload, hup)
	} else if *reload > 0 {
		logf("-reload-interval ignored without -load")
	}

	httpSrv := cliflag.HTTPServer(*addr, srv.Handler())
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logf("signal received; draining for up to %v...", *drainFor)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logf("shutdown: %v", err)
		}
		// Only after the listener has drained: cancel the engine context
		// and wake any stragglers.
		srv.Close()
	}()

	logf("serving %d WER rows / %d PUE rows on %s", len(ds.WER), len(ds.PUE), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-shutdownDone
	logf("bye")
}

// reloadLoop reloads the artifact on SIGHUP and, when interval > 0, on a
// timer. Failures are logged and the server keeps serving the current
// generation — a half-written artifact mid-retrain must never take the
// service down. Poll ticks go through serve.ArtifactWatcher: an unchanged
// (mtime, size) stat demotes the check to a cheap fingerprint peek rather
// than skipping outright, so a byte-different artifact landing under the
// same stat still reloads. SIGHUP always forces a real reload.
func reloadLoop(ctx context.Context, srv *serve.Server, path string, interval time.Duration, hup <-chan os.Signal) {
	var tick <-chan time.Time
	if interval > 0 {
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
		logf("polling %s every %v", path, interval)
	}
	watcher := serve.NewArtifactWatcher(srv, path)
	for {
		var why string
		var res *serve.ReloadResult
		var err error
		select {
		case <-ctx.Done():
			return
		case <-hup:
			why = "SIGHUP"
			res, err = watcher.Force()
		case <-tick:
			why = "poll"
			res, err = watcher.Poll()
		}
		switch {
		case err != nil:
			logf("reload (%s): %v", why, err)
		case res == nil:
			// Poll proved the on-disk fingerprint matches the serving
			// generation; nothing to do.
		case res.Swapped:
			logf("reload (%s): swapped in generation %d (%s) in %.1f ms",
				why, res.Generation, res.Fingerprint, res.ElapsedMS)
		default:
			logf("reload (%s): artifact unchanged (%s), still generation %d",
				why, res.Fingerprint, res.Generation)
		}
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dramserve: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dramserve:", err)
	os.Exit(1)
}
