// Command dramfleet is the closed-loop fleet load generator: it simulates
// a heterogeneous datacenter fleet running under relaxed refresh
// (internal/fleet) and drives its telemetry stream against a live
// dramserve over HTTP /v2 at a target rate, measuring what a fleet
// deployment of the paper's predictor would see — latency percentiles and
// online prediction error against the simulation's own ground truth.
//
// Boot a server, then aim a burst at it:
//
//	dramserve -load dfault.json.gz -addr :8080 &
//	dramfleet -addr http://127.0.0.1:8080 -qps 150 -duration 2s
//
// The query stream is a pure function of (-servers, -seed): the same seed
// replays byte-identically, which makes runs comparable across commits.
// Everything above the report's timing marker is deterministic too — two
// runs with the same seed against the same artifact render identical
// bytes with -timing=false, so CI can diff entire reports:
//
//	dramfleet -seed 1 -n 40 -timing=false > a
//	dramfleet -seed 1 -n 40 -timing=false > b && cmp a b
//
// -offline skips the server entirely and just summarizes the stream (the
// cheapest determinism check); -stream-out writes the stream as JSON
// lines for external replay. The server's own view of the run is exposed
// at GET /v2/stats; scripts/smoke.sh cross-checks the two in CI.
//
// -policy closes the control loop instead of load-testing: the fleet runs
// tick by tick, each tick's predictions (from the live server, or from
// the ground-truth oracle with -offline) feed the named mitigation policy
// (static, threshold, risk-budget), and its actions — refresh retunes,
// rank offlining, job migration — actuate the simulation. The printed
// mitigation ledger scores the policy against an un-actuated same-seed
// shadow fleet and is byte-identical across replays at equal seed:
//
//	dramfleet -addr http://127.0.0.1:8080 -policy threshold -ticks 16 -seed 1
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "dramserve base URL")
		servers   = flag.Int("servers", fleet.DefaultServers, "simulated fleet size")
		seed      = flag.Uint64("seed", 0, "fleet stream seed (same seed = same stream)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent in-flight requests")
		model     = flag.String("model", string(core.ModelKNN), "model kind queried (KNN, SVM or RDF)")
		offline   = flag.Bool("offline", false, "skip the server; only summarize the stream")
		ingestObs = flag.Bool("ingest", false, "report each query's ground-truth observation to /v2/ingest (closes the data loop against an -ingest server)")
		timing    = flag.Bool("timing", true, "append the wall-clock timing section to the report")
		streamOut = flag.String("stream-out", "", "write the query stream to this path as JSON lines")
		polName   = flag.String("policy", "", "run the closed mitigation loop under this policy (static, threshold, risk-budget) instead of the load generator")
		ticks     = flag.Int("ticks", 16, "simulation ticks for the -policy loop")
		lg        cliflag.LoadGen // shared -qps default applied by Register
		targets   cliflag.Targets
		prof      cliflag.Pprof
	)
	lg.Register(flag.CommandLine)
	targets.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	flag.Parse()

	if _, err := prof.Start(logf); err != nil {
		fatal(err)
	}

	if *polName != "" {
		runPolicy(*polName, *addr, *model, *servers, *seed, *ticks, *workers, *offline)
		return
	}

	want, err := targets.List()
	if err != nil {
		fatal(err)
	}
	if targets.All() {
		// The registry-wide default must not hard-request targets the
		// server's artifact cannot serve. Online, resolve the selection from
		// the targets /healthz advertises; offline (or when the probe fails,
		// e.g. against a router) fall back to requesting none and letting
		// the server's own default selection answer.
		want = nil
		if !*offline {
			want = advertisedTargets(*addr)
			if want != nil {
				logf("server advertises targets %v", want)
			}
		}
	}
	n, err := lg.Queries()
	if err != nil {
		fatal(err)
	}

	f, err := fleet.New(fleet.Config{Servers: *servers, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	qs := f.Take(n)

	if *streamOut != "" {
		if err := writeStream(*streamOut, qs); err != nil {
			fatal(err)
		}
		logf("wrote %d queries to %s (%s)", len(qs), *streamOut, fleet.Checksum(qs))
	}

	rep := &fleet.Report{
		Seed:    *seed,
		Servers: f.Config().Servers,
		Targets: want,
		Queries: qs,
	}
	if !*offline {
		logf("driving %d queries at %g qps against %s (%d workers)...",
			n, lg.QPS, *addr, *workers)
		start := time.Now()
		outs, err := fleet.Drive(qs, fleet.DriveOptions{
			BaseURL: *addr,
			QPS:     lg.QPS,
			Workers: *workers,
			Targets: want,
			Model:   *model,
			Ingest:  *ingestObs,
		})
		if err != nil {
			fatal(err)
		}
		rep.Outcomes = outs
		rep.Wall = time.Since(start)
		if *ingestObs {
			logf("ingested %d of %d observations", rep.Ingested(), rep.Completed())
		}
		if rep.Completed() == 0 {
			// Surface the first failure: an all-failed run is a setup
			// problem (server down, wrong -addr), not a report.
			for _, o := range outs {
				if o.Err != nil {
					fatal(fmt.Errorf("no queries completed: %w", o.Err))
				}
			}
		}
	}
	fmt.Print(rep.Render(*timing))
	if rep.Outcomes != nil && rep.Failed() > 0 {
		os.Exit(1)
	}
}

// runPolicy drives the closed mitigation loop: the named policy observes
// each tick's predictions and actuates the fleet, scored against a
// same-seed shadow baseline. Online the predictions come from the live
// server's /v2/predict; with -offline they come from the simulation's
// ground-truth oracle (the hermetic upper bound). The rendered ledger is
// deterministic: same (seed, servers, ticks, policy, artifact) ⇒ same
// bytes.
func runPolicy(name, addr, model string, servers int, seed uint64, ticks, workers int, offline bool) {
	pol, err := policy.ByName(name)
	if err != nil {
		fatal(err)
	}
	predict := policy.Oracle()
	if offline {
		logf("policy %s: oracle predictor (offline), %d servers × %d ticks", name, servers, ticks)
	} else {
		predict = policy.HTTPPredict(addr, model, nil, 0)
		logf("policy %s: predictions from %s, %d servers × %d ticks", name, addr, servers, ticks)
	}
	led, err := policy.Evaluate(policy.EvalConfig{
		Fleet:   fleet.Config{Servers: servers, Seed: seed},
		Ticks:   ticks,
		Workers: workers,
		Predict: predict,
	}, pol)
	if err != nil {
		fatal(err)
	}
	fmt.Print(led.Render())
}

// advertisedTargets asks the server which prediction targets its artifact
// can serve (the /healthz probing contract). nil when the probe fails or
// the endpoint does not advertise targets (an older server, or a router
// whose health body has a different shape) — callers treat nil as "let
// the server pick".
func advertisedTargets(base string) []core.Target {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var hr serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return nil
	}
	var out []core.Target
	for _, name := range hr.Targets {
		t, err := core.ParseTarget(name)
		if err != nil {
			continue
		}
		out = append(out, t)
	}
	return out
}

// writeStream dumps the stream as JSON lines, one query per line.
func writeStream(path string, qs []fleet.Query) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(file)
	enc := json.NewEncoder(w)
	for i := range qs {
		if err := enc.Encode(&qs[i]); err != nil {
			file.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dramfleet: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dramfleet:", err)
	os.Exit(1)
}
