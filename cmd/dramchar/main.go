// Command dramchar runs one DRAM characterization experiment — the paper's
// Fig. 3 "DRAM characterization phase" for a single operating point — and
// prints the SLIMpro error report.
//
// Usage:
//
//	dramchar -bench backprop(par) -trefp 2.283 -temp 60 [-vdd 1.428]
//	         [-scale 8] [-quick] [-reps 1] [-workers N] [-report-only]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/profile"
	"repro/internal/workload"
	"repro/internal/xgene"
)

func main() {
	var (
		bench      = flag.String("bench", "backprop(par)", "benchmark label (see -list)")
		list       = flag.Bool("list", false, "list benchmark labels and exit")
		trefp      = flag.Float64("trefp", 2.283, "refresh period in seconds")
		temp       = flag.Float64("temp", 60, "DIMM temperature in °C")
		vdd        = flag.Float64("vdd", dram.MinVDD, "DRAM supply voltage in volts")
		scale      = flag.Int("scale", 8, "simulation capacity divisor")
		quick      = flag.Bool("quick", false, "use test-size kernels")
		reps       = flag.Int("reps", 1, "repetitions")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent repetitions")
		reportOnly = flag.Bool("report-only", false, "log UEs without crashing")
		seed       = flag.Uint64("seed", 0, "server seed")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.ExtendedSet() {
			fmt.Printf("%-14s %d threads\n", s.Label, s.Threads)
		}
		return
	}
	spec, err := workload.FindSpec(*bench)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "profiling %s...\n", spec.Label)
	var prof *profile.Result
	if *quick {
		prof, err = profile.BuildQuick(spec, *seed)
	} else {
		prof, err = profile.Build(spec, *seed)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("profile: Treuse=%.3fs HDP=%.2f bits, DRAM %.3g acc/s, %.3g act/s\n",
		prof.Treuse, prof.HDP, prof.Access.DRAMAccessesPerSec, prof.Access.RowActivationsPerSec)

	if *reps <= 0 {
		fatal(fmt.Errorf("-reps must be positive, got %d", *reps))
	}
	srv := xgene.MustNewServer(xgene.Config{Seed: *seed, Scale: *scale})
	// Validate the operating point up front (and program it, as the real
	// protocol would) so a bad -trefp/-vdd fails before any run — including
	// an explicit -vdd 0, which Campaign would otherwise default to MinVDD.
	if err := srv.SetTREFP(*trefp); err != nil {
		fatal(err)
	}
	if err := srv.SetVDD(*vdd); err != nil {
		fatal(err)
	}
	// Repetitions are independent campaign jobs: run them concurrently and
	// report in repetition order.
	reqs := make([]xgene.Request, *reps)
	for rep := range reqs {
		reqs[rep] = xgene.Request{
			Profile: prof.Access,
			TREFP:   *trefp,
			VDD:     *vdd,
			Exp:     xgene.Experiment{TempC: *temp, Rep: rep, RecordWER: true, ReportOnly: *reportOnly},
		}
	}
	observations, err := srv.Campaign(reqs, engine.Options{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	for rep, obs := range observations {
		fmt.Printf("\nrun %d: thermal settle %.0fs, TREFP=%.3fs VDD=%.3fV %.0f°C\n",
			rep, obs.SettleSeconds, *trefp, *vdd, *temp)
		if obs.Crashed {
			fmt.Printf("  SYSTEM CRASH: uncorrectable error on %s at epoch %d\n",
				dram.RankName(obs.UERank), obs.CrashEpoch)
			continue
		}
		fmt.Printf("  WER = %.4g (%d unique erroneous words, %d UEs, %d SDCs)\n",
			obs.WER, totalCE(obs), obs.UECount, obs.SDCCount)
		for r := 0; r < dram.NumRanks; r++ {
			fmt.Printf("  %-12s WER %.4g (%d CE words)\n",
				dram.RankName(r), obs.WERByRank[r], obs.CEWords[r])
		}
		if len(obs.CERecords) > 0 {
			fmt.Printf("  first error locations (SLIMpro log, up to 5):\n")
			for i, rec := range obs.CERecords {
				if i == 5 {
					break
				}
				fmt.Printf("    %s bit %d @ %d min\n", rec.Addr, rec.Bit, (rec.Epoch+1)*10)
			}
		}
	}
}

func totalCE(obs *xgene.Observation) int {
	n := 0
	for _, c := range obs.CEWords {
		n += c
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dramchar:", err)
	os.Exit(1)
}
