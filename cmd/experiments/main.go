// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated platform and prints the numbers
// behind each plot.
//
// Usage:
//
//	experiments [-run id] [-scale n] [-reps n] [-quick] [-seed n]
//
// With no -run flag, all experiments execute in paper order. Experiment ids:
// fig2, fig4, tab2, fig7, fig8, fig9, fig10, fig11, fig12, fig13, vdd,
// ablation. Beyond the paper, "fleet" tabulates the simulated datacenter
// fleet scenario of internal/fleet, and "policy" runs the adaptive-
// mitigation policy study of internal/policy (run either alone to skip
// the profiling pass entirely: they need no campaign).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/workload"
)

func main() {
	var (
		runID   = flag.String("run", "", "run a single experiment id (default: all)")
		scale   = flag.Int("scale", 8, "DRAM simulation capacity divisor (1 = full 32 GiB)")
		reps    = flag.Int("reps", 10, "repetitions per PUE experiment")
		quick   = flag.Bool("quick", false, "use test-size kernels (fast smoke run)")
		seed    = flag.Uint64("seed", 0, "server and profiling seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent campaign jobs")
		fleetN  = flag.Int("fleet-queries", 1280, "queries simulated by the fleet experiment")
		ticks   = flag.Int("policy-ticks", 24, "simulation ticks per policy evaluation")
	)
	flag.Parse()

	// The fleet and policy scenarios need no profiles or campaign: serve
	// them before paying for the suite when requested alone.
	if *runID == "fleet" {
		printFleet(*seed, *fleetN)
		return
	}
	if *runID == "policy" {
		printPolicy(*seed, *ticks)
		return
	}

	size := workload.SizeProfile
	if *quick {
		size = workload.SizeTest
	}
	fmt.Fprintf(os.Stderr, "profiling %d workloads (size=%v, scale=%d, workers=%d)...\n",
		len(workload.ExtendedSet()), size, *scale, *workers)
	suite, err := exp.NewSuite(exp.Options{
		Size: size, Scale: *scale, Reps: *reps, Seed: *seed, Workers: *workers,
	})
	if err != nil {
		fatal(err)
	}

	experiments := map[string]func() (*exp.Table, error){
		"fig2": suite.Fig2, "fig4": suite.Fig4, "tab2": suite.Table2,
		"fig7": suite.Fig7, "fig8": suite.Fig8, "fig9": suite.Fig9,
		"fig10": suite.Fig10, "fig11": suite.Fig11, "fig12": suite.Fig12,
		"fig13": suite.Fig13, "vdd": suite.VddStudy, "ablation": suite.Ablation,
	}
	if *runID != "" {
		fn, ok := experiments[*runID]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *runID))
		}
		tbl, err := fn()
		if err != nil {
			fatal(err)
		}
		fmt.Println(tbl.Render())
		return
	}
	tables, err := suite.All()
	for _, tbl := range tables {
		fmt.Println(tbl.Render())
	}
	if err != nil {
		fatal(err)
	}
	// The beyond-the-paper fleet and policy scenarios ride at the end of
	// a full run.
	printFleet(*seed, *fleetN)
	printPolicy(*seed, *ticks)
}

// printFleet renders the fleet-composition table at the default fleet
// size (the same fleet cmd/dramfleet -servers defaults to).
func printFleet(seed uint64, n int) {
	tbl, err := exp.FleetSummary(fleet.DefaultServers, seed, n)
	if err != nil {
		fatal(err)
	}
	fmt.Println(tbl.Render())
}

// printPolicy renders the adaptive-mitigation policy study at the
// default fleet size.
func printPolicy(seed uint64, ticks int) {
	tbl, err := exp.PolicyStudy(fleet.DefaultServers, seed, ticks)
	if err != nil {
		fatal(err)
	}
	fmt.Println(tbl.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
