// Command dramrouter fronts a pool of dramserve backends with the
// cluster routing tier (internal/cluster): consistent-hash model
// ownership, health-checked membership, bounded retry with hedging, and
// cross-node artifact-fingerprint consistency. It serves the /v2 wire
// format unchanged, so any /v2 client uses it as a drop-in address:
//
//	dramserve -load dfault.json.gz -addr :8081 &
//	dramserve -load dfault.json.gz -addr :8082 &
//	dramrouter -addr :8080 -backends 127.0.0.1:8081,127.0.0.1:8082
//	dramfleet -addr http://127.0.0.1:8080 -qps 300 -duration 5s
//
// GET /healthz reports pool membership and per-backend artifact identity
// (503 on a fingerprint-skewed or fully-down pool); GET /metrics exports
// the routing counters. API.md documents the cluster-mode semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/cluster"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		backends  = flag.String("backends", "", "comma-separated dramserve base URLs (required)")
		probe     = flag.Duration("probe-interval", cluster.DefaultProbeInterval, "health-probe period")
		failAfter = flag.Int("fail-after", cluster.DefaultFailAfter, "consecutive failures before a backend is ejected")
		hedge     = flag.Duration("hedge-after", cluster.DefaultHedgeAfter, "hedge a sub-request slower than this to the next backend (negative disables)")
		attempts  = flag.Int("attempts", cluster.DefaultAttempts, "distinct backends one sub-request may try")
		reqTO     = flag.Duration("request-timeout", cluster.DefaultRequestTimeout, "per-attempt proxy deadline")
		drainFor  = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
		prof      cliflag.Pprof
	)
	prof.Register(flag.CommandLine)
	flag.Parse()

	if _, err := prof.Start(logf); err != nil {
		fatal(err)
	}
	if *backends == "" {
		fatal(errors.New("-backends is required (comma-separated dramserve URLs)"))
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	rt, err := cluster.New(cluster.Options{
		Backends:       strings.Split(*backends, ","),
		ProbeInterval:  *probe,
		FailAfter:      *failAfter,
		HedgeAfter:     *hedge,
		Attempts:       *attempts,
		RequestTimeout: *reqTO,
		Context:        ctx,
		Logf:           logf,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	httpSrv := cliflag.HTTPServer(*addr, rt.Handler())
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logf("signal received; draining for up to %v...", *drainFor)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logf("shutdown: %v", err)
		}
	}()

	logf("routing %d backends on %s", len(strings.Split(*backends, ",")), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-shutdownDone
	logf("bye")
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dramrouter: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dramrouter:", err)
	os.Exit(1)
}
