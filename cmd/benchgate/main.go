// Command benchgate records and enforces the repo's benchmark trajectory.
//
// It parses `go test -bench` output into a machine-classed snapshot and
// either writes it as the new baseline or compares it against the
// checked-in one:
//
//	go test -run '^$' -bench ... ./... | tee bench.out
//	benchgate -in bench.out -update          # refresh BENCH_<class>.json
//	benchgate -in bench.out                  # gate: exit 1 on regression
//
// scripts/bench.sh wraps both modes; CI runs the check. Allocation counts
// on low-alloc benchmarks are gated exactly, times with a slack factor
// (-factor, or BENCH_TIME_FACTOR in the environment). A baseline recorded
// on a different machine class — or no baseline for this class at all —
// skips the gate with exit 0: those numbers are not comparable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/benchmark"
)

func main() {
	in := flag.String("in", "-", "bench output to read (`file`, - for stdin)")
	baseline := flag.String("baseline", "", "baseline snapshot `file` (default BENCH_<class>.json of the parsed run's class)")
	update := flag.Bool("update", false, "write the parsed run as the new baseline instead of comparing")
	factor := flag.Float64("factor", envFactor(), "time/bytes slack multiplier (BENCH_TIME_FACTOR)")
	flag.Parse()

	if err := run(*in, *baseline, *update, *factor); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func envFactor() float64 {
	if s := os.Getenv("BENCH_TIME_FACTOR"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 2.0
}

func run(in, baselinePath string, update bool, factor float64) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	current, err := benchmark.Parse(r)
	if err != nil {
		return err
	}
	if baselinePath == "" {
		baselinePath = "BENCH_" + current.MachineClass + ".json"
	}

	if update {
		if err := current.Write(baselinePath); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks, class %s)\n",
			baselinePath, len(current.Benchmarks), current.MachineClass)
		return nil
	}

	base, err := benchmark.Load(baselinePath)
	if err != nil {
		if os.IsNotExist(err) {
			// No snapshot recorded for this machine class: the trajectory
			// is tracked elsewhere. Skip, don't fail — same contract as an
			// explicit class mismatch — but say so LOUDLY on stderr: a
			// green CI run where the gate never compared anything must be
			// distinguishable from one the gate actually passed.
			fmt.Fprintf(os.Stderr,
				"benchgate: SKIPPED — no baseline %s for machine class %s; NO regression gate ran (record one with scripts/bench.sh record)\n",
				baselinePath, current.MachineClass)
			return nil
		}
		return err
	}
	v := benchmark.Compare(base, current, benchmark.Options{TimeFactor: factor})
	if v.Skipped {
		fmt.Fprintf(os.Stderr, "benchgate: SKIPPED — %s; NO regression gate ran\n", v.Reason)
		return nil
	}
	for _, n := range v.New {
		fmt.Printf("benchgate: note: %s not in baseline (refresh with scripts/bench.sh record)\n", n)
	}
	if !v.OK() {
		for _, reg := range v.Regressions {
			fmt.Fprintln(os.Stderr, "benchgate: REGRESSION:", reg)
		}
		return fmt.Errorf("%d regression(s) against %s", len(v.Regressions), baselinePath)
	}
	fmt.Printf("benchgate: OK — %d benchmarks within gate (factor %.2g) of %s\n",
		len(base.Benchmarks), factor, baselinePath)
	return nil
}
