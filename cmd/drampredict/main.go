// Command drampredict demonstrates the paper's headline use case: predict
// the DRAM error behaviour of a workload for any operating point in well
// under a second, without a multi-hour characterization campaign
// (Section VI-C: "our models predict DRAM errors within 300 ms").
//
// It trains the published KNN model once on the campaign dataset, then
// answers WER/PUE queries for the given workload and operating point,
// reporting the prediction latency.
//
// Usage:
//
//	drampredict -bench lulesh(F) -trefp 0.618 -temp 70 [-quick] [-scale 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/workload"
	"repro/internal/xgene"
)

func main() {
	var (
		bench   = flag.String("bench", "lulesh(F)", "workload to predict")
		trefp   = flag.Float64("trefp", 0.618, "refresh period in seconds")
		temp    = flag.Float64("temp", 70, "DIMM temperature in °C")
		scale   = flag.Int("scale", 8, "simulation capacity divisor")
		quick   = flag.Bool("quick", false, "use test-size kernels")
		seed    = flag.Uint64("seed", 0, "server and profiling seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent campaign jobs")
	)
	flag.Parse()

	size := workload.SizeProfile
	if *quick {
		size = workload.SizeTest
	}
	spec, err := workload.FindSpec(*bench)
	if err != nil {
		fatal(err)
	}

	// Training corpus: every workload except the prediction target (the
	// model must generalize to unseen programs, as in the paper's
	// validation).
	var trainSpecs []workload.Spec
	for _, s := range workload.ExtendedSet() {
		if s.Label != spec.Label {
			trainSpecs = append(trainSpecs, s)
		}
	}
	fmt.Fprintln(os.Stderr, "building training dataset (one-time cost)...")
	profiles, err := core.BuildProfiles(trainSpecs, size, *seed, *workers)
	if err != nil {
		fatal(err)
	}
	srv := xgene.MustNewServer(xgene.Config{Seed: *seed, Scale: *scale})
	ds, err := core.BuildDataset(srv, profiles, trainSpecs, core.CampaignOptions{Reps: 5, Workers: *workers})
	if err != nil {
		fatal(err)
	}
	werModel, err := core.TrainWER(ds, core.ModelKNN, core.InputSet1, *workers)
	if err != nil {
		fatal(err)
	}
	pueModel, err := core.TrainPUE(ds, core.ModelKNN, core.InputSet2, *workers)
	if err != nil {
		fatal(err)
	}

	// Profile the target workload (the paper's "Profiling phase": fast,
	// no DRAM characterization involved).
	targetProfiles, err := core.BuildProfiles([]workload.Spec{spec}, size, *seed, 1)
	if err != nil {
		fatal(err)
	}
	features := targetProfiles[spec.Label].Features

	start := time.Now()
	wer := werModel.PredictMean(features, *trefp, dram.MinVDD, *temp)
	perRank := make([]float64, dram.NumRanks)
	for r := 0; r < dram.NumRanks; r++ {
		perRank[r] = werModel.Predict(features, *trefp, dram.MinVDD, *temp, r)
	}
	pue := pueModel.Predict(features, *trefp, dram.MinVDD, *temp)
	elapsed := time.Since(start)

	fmt.Printf("prediction for %s at TREFP=%.3fs, %.0f°C, VDD=%.3fV:\n",
		spec.Label, *trefp, *temp, dram.MinVDD)
	fmt.Printf("  WER (device mean): %.4g\n", wer)
	for r := 0; r < dram.NumRanks; r++ {
		fmt.Printf("  %-12s %.4g\n", dram.RankName(r), perRank[r])
	}
	fmt.Printf("  PUE (crash probability): %.2f\n", pue)
	fmt.Printf("  prediction latency: %v (paper: within 300 ms)\n", elapsed)

	// Validate against a real characterization run when it is survivable.
	if err := srv.SetTREFP(*trefp); err == nil && *temp <= 70 {
		_ = srv.SetVDD(dram.MinVDD)
		obs, err := srv.Run(targetProfiles[spec.Label].Access,
			xgene.Experiment{TempC: *temp, RecordWER: true})
		if err == nil && obs.WERValid && obs.WER > 0 {
			fmt.Printf("  measured (2h characterization): %.4g (%.1fx off)\n",
				obs.WER, ratio(wer, obs.WER))
		} else if err == nil && obs.Crashed {
			fmt.Printf("  measured: system crash (UE on %s)\n", dram.RankName(obs.UERank))
		}
	}
}

func ratio(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return 0
	}
	return a / b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drampredict:", err)
	os.Exit(1)
}
