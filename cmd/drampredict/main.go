// Command drampredict demonstrates the paper's headline use case: predict
// the DRAM error behaviour of a workload for any operating point in well
// under a second, without a multi-hour characterization campaign
// (Section VI-C: "our models predict DRAM errors within 300 ms").
//
// It trains the published KNN model for each requested target once on the
// campaign dataset through the unified core.Train factory, then answers
// the queries for the given workload and operating point, reporting the
// prediction latency. With -load the campaign is skipped entirely: the
// corpus comes from a saved artifact (see dramtrain -save), with the
// target workload's rows excluded so the model still has to generalize to
// it. -target restricts the prediction to specific targets (any name in
// the core target registry); the default predicts every target the corpus
// can serve.
//
// Usage:
//
//	drampredict -bench lulesh(F) -trefp 0.618 -temp 70 [-target wer] [-quick] [-scale 8] [-load dfault.json.gz]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/profile"
	"repro/internal/workload"
	"repro/internal/xgene"
)

func main() {
	var (
		bench   = flag.String("bench", "lulesh(F)", "workload to predict")
		trefp   = flag.Float64("trefp", 0.618, "refresh period in seconds")
		temp    = flag.Float64("temp", 70, "DIMM temperature in °C")
		camp    = cliflag.Campaign{Reps: 5}
		targets cliflag.Targets
	)
	camp.Register(flag.CommandLine)
	targets.Register(flag.CommandLine)
	flag.Parse()

	want, err := targets.List()
	if err != nil {
		fatal(err)
	}
	spec, err := workload.FindSpec(*bench)
	if err != nil {
		fatal(err)
	}
	if camp.Save != "" {
		// The corpus built here excludes -bench; persisting it would hand
		// later loads a silently incomplete artifact.
		fatal(fmt.Errorf("-save is not supported: drampredict's corpus excludes %q; build the artifact with dramtrain -save", spec.Label))
	}

	// Training corpus: every workload except the prediction target (the
	// model must generalize to unseen programs, as in the paper's
	// validation). A loaded artifact is filtered the same way.
	var trainSpecs []workload.Spec
	for _, s := range workload.ExtendedSet() {
		if s.Label != spec.Label {
			trainSpecs = append(trainSpecs, s)
		}
	}
	if camp.Load == "" {
		fmt.Fprintln(os.Stderr, "building training dataset (one-time cost; use -load to reuse an artifact)...")
	}
	ds, srv, err := camp.DatasetAndServer(trainSpecs, logf)
	if err != nil {
		fatal(err)
	}
	ds = ds.WithoutWorkload(spec.Label)

	// The default "all" selection narrows to what the corpus can serve
	// (ue_risk needs UE telemetry rows, see dramtrain -ue-windows); an
	// explicitly requested target without rows stays a hard error.
	if targets.All() {
		var avail []core.Target
		for _, tgt := range want {
			if d, ok := core.Describe(tgt); ok && d.Available(ds) {
				avail = append(avail, tgt)
			}
		}
		want = avail
	}

	// One factory call per requested target: the paper's published KNN
	// variant on each target's default input set.
	models := make(map[core.Target]core.Predictor, len(want))
	for _, tgt := range want {
		models[tgt], err = core.Train(ds, tgt, core.ModelKNN, 0, camp.Workers)
		if err != nil {
			fatal(err)
		}
	}

	// Profile the target workload (the paper's "Profiling phase": fast,
	// no DRAM characterization involved).
	targetProf, err := profile.BuildAt(spec, camp.Size(), camp.Seed)
	if err != nil {
		fatal(err)
	}
	features := targetProf.Features

	start := time.Now()
	preds := make(map[core.Target]core.Prediction, len(models))
	for tgt, model := range models {
		p, err := model.Predict(core.Query{
			Target: tgt, Features: features, TREFP: *trefp,
			VDD: dram.MinVDD, TempC: *temp, Rank: core.RankDevice,
		})
		if err != nil {
			fatal(err)
		}
		preds[tgt] = p
	}
	elapsed := time.Since(start)

	fmt.Printf("prediction for %s at TREFP=%.3fs, %.0f°C, VDD=%.3fV:\n",
		spec.Label, *trefp, *temp, dram.MinVDD)
	if wer, ok := preds[core.TargetWER]; ok {
		fmt.Printf("  WER (device mean): %.4g\n", wer.Value)
		for r, v := range wer.ByRank {
			fmt.Printf("  %-12s %.4g\n", dram.RankName(r), v)
		}
	}
	if pue, ok := preds[core.TargetPUE]; ok {
		fmt.Printf("  PUE (crash probability): %.2f\n", pue.Value)
	}
	if ue, ok := preds[core.TargetUERisk]; ok {
		fmt.Printf("  UE risk (healthy CE window): %.2f\n", ue.Value)
	}
	fmt.Printf("  prediction latency: %v (paper: within 300 ms)\n", elapsed)

	// Validate against a real characterization run when a campaign server
	// exists (skipped with -load: the whole point is not to characterize),
	// WER was predicted, and the operating point is survivable.
	wer, ok := preds[core.TargetWER]
	if srv == nil || !ok {
		return
	}
	if err := srv.SetTREFP(*trefp); err == nil && *temp <= 70 {
		_ = srv.SetVDD(dram.MinVDD)
		obs, err := srv.Run(targetProf.Access,
			xgene.Experiment{TempC: *temp, RecordWER: true})
		if err == nil && obs.WERValid && obs.WER > 0 {
			fmt.Printf("  measured (2h characterization): %.4g (%.1fx off)\n",
				obs.WER, ratio(wer.Value, obs.WER))
		} else if err == nil && obs.Crashed {
			fmt.Printf("  measured: system crash (UE on %s)\n", dram.RankName(obs.UERank))
		}
	}
}

func ratio(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return 0
	}
	return a / b
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drampredict:", err)
	os.Exit(1)
}
