// Command drampredict demonstrates the paper's headline use case: predict
// the DRAM error behaviour of a workload for any operating point in well
// under a second, without a multi-hour characterization campaign
// (Section VI-C: "our models predict DRAM errors within 300 ms").
//
// It trains the published KNN model once on the campaign dataset, then
// answers WER/PUE queries for the given workload and operating point,
// reporting the prediction latency. With -load the campaign is skipped
// entirely: the corpus comes from a saved artifact (see dramtrain -save),
// with the target workload's rows excluded so the model still has to
// generalize to it.
//
// Usage:
//
//	drampredict -bench lulesh(F) -trefp 0.618 -temp 70 [-quick] [-scale 8] [-load dfault.json.gz]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/profile"
	"repro/internal/workload"
	"repro/internal/xgene"
)

func main() {
	var (
		bench = flag.String("bench", "lulesh(F)", "workload to predict")
		trefp = flag.Float64("trefp", 0.618, "refresh period in seconds")
		temp  = flag.Float64("temp", 70, "DIMM temperature in °C")
		camp  = cliflag.Campaign{Reps: 5}
	)
	camp.Register(flag.CommandLine)
	flag.Parse()

	spec, err := workload.FindSpec(*bench)
	if err != nil {
		fatal(err)
	}
	if camp.Save != "" {
		// The corpus built here excludes -bench; persisting it would hand
		// later loads a silently incomplete artifact.
		fatal(fmt.Errorf("-save is not supported: drampredict's corpus excludes %q; build the artifact with dramtrain -save", spec.Label))
	}

	// Training corpus: every workload except the prediction target (the
	// model must generalize to unseen programs, as in the paper's
	// validation). A loaded artifact is filtered the same way.
	var trainSpecs []workload.Spec
	for _, s := range workload.ExtendedSet() {
		if s.Label != spec.Label {
			trainSpecs = append(trainSpecs, s)
		}
	}
	if camp.Load == "" {
		fmt.Fprintln(os.Stderr, "building training dataset (one-time cost; use -load to reuse an artifact)...")
	}
	ds, srv, err := camp.DatasetAndServer(trainSpecs, logf)
	if err != nil {
		fatal(err)
	}
	ds = ds.WithoutWorkload(spec.Label)
	werModel, err := core.TrainWER(ds, core.ModelKNN, core.InputSet1, camp.Workers)
	if err != nil {
		fatal(err)
	}
	pueModel, err := core.TrainPUE(ds, core.ModelKNN, core.InputSet2, camp.Workers)
	if err != nil {
		fatal(err)
	}

	// Profile the target workload (the paper's "Profiling phase": fast,
	// no DRAM characterization involved).
	targetProf, err := profile.BuildAt(spec, camp.Size(), camp.Seed)
	if err != nil {
		fatal(err)
	}
	features := targetProf.Features

	start := time.Now()
	wer := werModel.PredictMean(features, *trefp, dram.MinVDD, *temp)
	perRank := make([]float64, dram.NumRanks)
	for r := 0; r < dram.NumRanks; r++ {
		perRank[r] = werModel.Predict(features, *trefp, dram.MinVDD, *temp, r)
	}
	pue := pueModel.Predict(features, *trefp, dram.MinVDD, *temp)
	elapsed := time.Since(start)

	fmt.Printf("prediction for %s at TREFP=%.3fs, %.0f°C, VDD=%.3fV:\n",
		spec.Label, *trefp, *temp, dram.MinVDD)
	fmt.Printf("  WER (device mean): %.4g\n", wer)
	for r := 0; r < dram.NumRanks; r++ {
		fmt.Printf("  %-12s %.4g\n", dram.RankName(r), perRank[r])
	}
	fmt.Printf("  PUE (crash probability): %.2f\n", pue)
	fmt.Printf("  prediction latency: %v (paper: within 300 ms)\n", elapsed)

	// Validate against a real characterization run when a campaign server
	// exists (skipped with -load: the whole point is not to characterize)
	// and the operating point is survivable.
	if srv == nil {
		return
	}
	if err := srv.SetTREFP(*trefp); err == nil && *temp <= 70 {
		_ = srv.SetVDD(dram.MinVDD)
		obs, err := srv.Run(targetProf.Access,
			xgene.Experiment{TempC: *temp, RecordWER: true})
		if err == nil && obs.WERValid && obs.WER > 0 {
			fmt.Printf("  measured (2h characterization): %.4g (%.1fx off)\n",
				obs.WER, ratio(wer, obs.WER))
		} else if err == nil && obs.Crashed {
			fmt.Printf("  measured: system crash (UE on %s)\n", dram.RankName(obs.UERank))
		}
	}
}

func ratio(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return 0
	}
	return a / b
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drampredict:", err)
	os.Exit(1)
}
