// Command dramtrain builds the paper's dataset (characterization campaigns
// over all workloads), trains the three ML models on the three input sets,
// and prints the cross-validated accuracy comparison (Figs. 11 and 12).
// -target restricts the evaluation to one prediction target. -ue-windows
// additionally synthesizes UE-risk training telemetry from the fleet
// simulator (per-server CE event windows with closed-form ground truth) so
// the artifact can serve the ue_risk classification target.
//
// Usage:
//
//	dramtrain [-scale 8] [-reps 10] [-quick] [-seed 0] [-target all] [-ue-windows 0] [-save dfault.json.gz | -load dfault.json.gz]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/workload"
)

func main() {
	var (
		camp      cliflag.Campaign
		targets   cliflag.Targets
		ueWindows int
	)
	camp.Register(flag.CommandLine)
	targets.Register(flag.CommandLine)
	flag.IntVar(&ueWindows, "ue-windows", 0,
		"synthesize this many UE-risk telemetry windows per simulated server (0 = off)")
	flag.Parse()

	if _, err := targets.List(); err != nil {
		fatal(err)
	}
	// Defer the artifact write until after any UE telemetry synthesis so a
	// single -save produces the complete artifact.
	savePath := camp.Save
	camp.Save = ""
	ds, err := camp.Dataset(workload.ExtendedSet(), logf)
	if err != nil {
		fatal(err)
	}
	if ueWindows > 0 {
		logf("synthesizing %d UE telemetry windows per server...", ueWindows)
		rows, err := fleet.BuildUESamples(fleet.Config{Seed: camp.Seed}, ueWindows)
		if err != nil {
			fatal(err)
		}
		ds.SetUER(rows)
	}
	if savePath != "" {
		if err := ds.Save(savePath); err != nil {
			fatal(err)
		}
		logf("saved dataset artifact to %s", savePath)
	}
	observed := 0
	for _, s := range ds.WER {
		if s.WER > core.WERFloor {
			observed++
		}
	}
	fmt.Printf("dataset: %d WER rows (%d with observed errors), %d PUE rows, %d UE rows, %d workloads\n\n",
		len(ds.WER), observed, len(ds.PUE), len(ds.UER), len(ds.Workloads()))

	if targets.Has(core.TargetWER) {
		fmt.Println("WER prediction, leave-one-workload-out (mean percentage error):")
		fmt.Printf("%-6s %-12s %-8s %-10s\n", "model", "input set", "avg", "median app")
		for _, kind := range core.ModelKinds() {
			for _, set := range core.InputSets() {
				ev, err := core.EvaluateWER(ds, kind, set, camp.Workers)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("%-6s %-12s %-8.1f %-10.1f\n", kind, set,
					100*ev.MPE, 100*medianOf(ev.MPEByWorkload))
			}
		}
	}

	if targets.Has(core.TargetPUE) {
		fmt.Println("\nPUE prediction, leave-one-workload-out (mean absolute error, prob. points):")
		fmt.Printf("%-6s %-12s %-8s\n", "model", "input set", "MAE")
		for _, kind := range core.ModelKinds() {
			for _, set := range core.InputSets() {
				ev, err := core.EvaluatePUE(ds, kind, set, camp.Workers)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("%-6s %-12s %-8.1f\n", kind, set, 100*ev.MAE)
			}
		}
	}

	if targets.Has(core.TargetUERisk) {
		if len(ds.UER) > 0 {
			fmt.Println("\nUE-risk classification, leave-one-server-out (threshold 0.5):")
			fmt.Printf("%-6s %-12s %-10s %-8s %-8s\n", "model", "input set", "precision", "recall", "AUC")
			for _, kind := range core.ModelKinds() {
				for _, set := range core.InputSets() {
					ev, err := core.EvaluateUERisk(ds, kind, set, camp.Workers)
					if err != nil {
						fatal(err)
					}
					fmt.Printf("%-6s %-12s %-10.1f %-8.1f %-8.3f\n", kind, set,
						100*ev.Precision, 100*ev.Recall, ev.AUC)
				}
			}
		} else {
			logf("no UE telemetry rows in the dataset; use -ue-windows to synthesize them")
		}
	}

	if !targets.Has(core.TargetWER) {
		return
	}
	conv, err := core.NewConventionalModel(ds, "random")
	if err == nil {
		fmt.Println("\nconventional workload-unaware baseline (random data pattern):")
		ratioSum, n := 0.0, 0
		for _, s := range ds.WER {
			if s.Workload == "random" || s.WER <= core.WERFloor {
				continue
			}
			if base, err := conv.Predict(s.TREFP, s.TempC, s.Rank); err == nil && base > 0 {
				r := base / s.WER
				if r < 1 {
					r = 1 / r
				}
				ratioSum += r
				n++
			}
		}
		if n > 0 {
			fmt.Printf("mean multiplicative error vs real workloads: %.1fx (paper: 2.9x)\n",
				ratioSum/float64(n))
		}
	}
}

func medianOf(m map[string]float64) float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	if len(vals) == 0 {
		return 0
	}
	return vals[len(vals)/2]
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dramtrain:", err)
	os.Exit(1)
}
