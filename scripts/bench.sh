#!/usr/bin/env bash
# Runs the canonical benchmark set and records or gates the benchmark
# trajectory:
#
#   scripts/bench.sh check    # run + compare against BENCH_<class>.json (CI)
#   scripts/bench.sh record   # run + refresh BENCH_<class>.json
#
# The canonical set spans every layer of the serving stack: model-level
# kNN, SVR and forest predicts (internal/ml), a mixed 64-query batch through
# the core predictors, the pooled /v2 request decode, a warm single-query
# POST /v2/predict into the handler, a closed-loop 64-query fleet drive
# over loopback HTTP, and the ingest pipeline's row-append hot path.
#
# cmd/benchgate does the comparison: allocation counts on low-alloc
# benchmarks are exact (a reintroduced per-op allocation fails no matter
# how fast the run was), ns/op and B/op get a slack factor (default 2.0,
# override with BENCH_TIME_FACTOR) because runner speed is noisy. A
# machine class with no checked-in snapshot skips the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-check}"
case "$mode" in check|record) ;; *)
  echo "usage: scripts/bench.sh [check|record]" >&2; exit 2 ;;
esac

out=$(mktemp)
trap 'rm -f "$out"' EXIT

# One count at the default 1s benchtime: stable enough under the slack
# factor, and the exact alloc gate doesn't need repetitions at all.
go test -run '^$' \
  -bench '^(BenchmarkKNNPredict|BenchmarkSVRPredict|BenchmarkForestPredict|BenchmarkPredictBatch|BenchmarkDecodePredictV2|BenchmarkServePredictV2|BenchmarkFleetDrive|BenchmarkIngestAppend)$' \
  -benchmem -benchtime=1s -timeout=20m \
  ./internal/ml/ ./internal/core/ ./internal/serve/ ./internal/fleet/ ./internal/ingest/ | tee "$out"

case "$mode" in
  record) go run ./cmd/benchgate -in "$out" -update ;;
  check)  go run ./cmd/benchgate -in "$out" ;;
esac
