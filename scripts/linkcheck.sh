#!/usr/bin/env bash
# Checks that every relative link in the given markdown files points at a
# file that exists in the repository (external http(s)/mailto links and
# pure #anchors are skipped — CI must not flake on the network). Run from
# anywhere: paths resolve against the repo root.
#
#   scripts/linkcheck.sh README.md API.md EXPERIMENTS.md
set -euo pipefail
cd "$(dirname "$0")/.."

[ "$#" -gt 0 ] || set -- README.md API.md EXPERIMENTS.md

fail=0
for f in "$@"; do
  if [ ! -f "$f" ]; then
    echo "linkcheck: $f: no such file"
    fail=1
    continue
  fi
  # Inline markdown links: [text](target).
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$path" ]; then
      echo "linkcheck: $f: broken link -> $target"
      fail=1
    fi
  done < <(grep -o '\[[^][]*\]([^()]*)' "$f" | sed 's/.*](\([^)]*\))$/\1/')
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "linkcheck OK ($# files)"
