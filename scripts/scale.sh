#!/usr/bin/env bash
# Measures the cluster tier's scaling table (EXPERIMENTS.md "Scaling out"):
# boots N dramserve backends behind dramrouter for N in BACKENDS, drives a
# fixed query count through the router as fast as the closed loop allows,
# and prints achieved aggregate QPS plus p50/p99 per pool size, with a
# router-less single backend as the baseline row.
#
#   scripts/scale.sh                      # default: direct, then 1 2 4
#   BACKENDS="1 2" QUERIES=1000 scripts/scale.sh
#
# Interpreting the numbers requires knowing the machine: each backend is a
# separate OS process, so aggregate throughput only rises with pool size
# when there are cores for the pool to spread over (see EXPERIMENTS.md for
# a single-core run where the inversion is the finding).
set -euo pipefail
cd "$(dirname "$0")/.."

BACKENDS="${BACKENDS:-1 2 4}"
QUERIES="${QUERIES:-3000}"
WORKERS="${WORKERS:-16}"
WARMUP="${WARMUP:-200}"
art=internal/core/testdata/golden_v1.json.gz
base_port=19100
workdir=$(mktemp -d)
pids=()
cleanup() { kill "${pids[@]}" 2>/dev/null || true; rm -rf "$workdir"; }
trap cleanup EXIT

go build -o "$workdir/dramserve" ./cmd/dramserve
go build -o "$workdir/dramfleet" ./cmd/dramfleet
go build -o "$workdir/dramrouter" ./cmd/dramrouter

wait_ok() { # wait_ok url
  for _ in $(seq 1 200); do
    curl -fsS "$1" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "scale: $1 never became healthy" >&2
  return 1
}

drive() { # drive addr label
  # Warm the pool's models first so the measured run is the steady state.
  "$workdir/dramfleet" -addr "$1" -seed 9 -n "$WARMUP" -qps 50000 \
    -workers "$WORKERS" >/dev/null 2>&1
  local t0 t1 wall_ms comp p50 p99
  t0=$(date +%s%N)
  "$workdir/dramfleet" -addr "$1" -seed 2 -n "$QUERIES" -qps 50000 \
    -workers "$WORKERS" >"$workdir/out.txt" 2>/dev/null
  t1=$(date +%s%N)
  wall_ms=$(( (t1 - t0) / 1000000 ))
  comp=$(sed -n 's/^completed \([0-9]*\)$/\1/p' "$workdir/out.txt")
  p50=$(sed -n 's/^p50 \([0-9.]*\) ms$/\1/p' "$workdir/out.txt")
  p99=$(sed -n 's/^p99 \([0-9.]*\) ms$/\1/p' "$workdir/out.txt")
  printf '%-12s %8s %9s %10s %8s %8s\n' \
    "$2" "$comp" "${wall_ms}ms" "$(( comp * 1000 / wall_ms ))" "$p50" "$p99"
}

stop_all() { kill "${pids[@]}" 2>/dev/null || true; pids=(); sleep 0.3; }

printf '%-12s %8s %9s %10s %8s %8s\n' config completed wall qps p50ms p99ms

# Baseline: one backend, no router in the path.
"$workdir/dramserve" -load "$art" -addr "127.0.0.1:$base_port" 2>/dev/null &
pids+=($!)
wait_ok "http://127.0.0.1:$base_port/healthz"
drive "http://127.0.0.1:$base_port" direct
stop_all

for n in $BACKENDS; do
  backends=""
  for i in $(seq 1 "$n"); do
    port=$((base_port + i))
    "$workdir/dramserve" -load "$art" -addr "127.0.0.1:$port" 2>/dev/null &
    pids+=($!)
    backends+="127.0.0.1:$port,"
  done
  "$workdir/dramrouter" -addr "127.0.0.1:$base_port" \
    -backends "${backends%,}" -probe-interval 100ms 2>/dev/null &
  pids+=($!)
  wait_ok "http://127.0.0.1:$base_port/healthz"
  drive "http://127.0.0.1:$base_port" "router x$n"
  stop_all
done
