#!/usr/bin/env bash
# Smoke-tests the deployed serving surface end to end: builds dramserve
# and dramfleet, boots the server against the checked-in golden artifact,
# and exercises /healthz, /v1/predict and /v2/predict over real HTTP —
# asserting the artifact generation and fingerprint are surfaced, both
# predict surfaces answer, and the uniform method contract (405 + Allow)
# holds. It then aims a dramfleet burst at the server, asserts a
# parseable latency-percentile report, cross-checks the generator's
# completed-query count against the server's /v2/stats counters, and
# replays the same seed twice to prove the report is byte-identical. CI
# runs this after the unit suite; it is also runnable locally:
# scripts/smoke.sh
#
# A second act boots the cluster tier: two more dramserve backends fronted
# by dramrouter, asserting the pool reaches fingerprint agreement and that
# a dramfleet burst drives the /v2 surface through the router unchanged.
#
# A third act covers the field-failure target: dramtrain synthesizes a
# UE-telemetry artifact (asserting the classifier eval is byte-identical
# across worker counts), then ue_risk is queried end to end through a
# direct dramserve and through dramrouter, asserting /v2/stats counts the
# new (target, kind, input set) model triple.
#
# A fourth act closes the data loop: an -ingest dramserve takes a
# dramfleet -ingest burst (ground-truth observations via /v2/ingest),
# trips the drift/row-count retrain triggers, and the assertions are that
# a new fingerprinted generation was published, the artifact on disk was
# rewritten to match, zero predicts failed during the swap, and the
# ingest counters and manual /v2/retrain answer coherently.
#
# A fifth act closes the control loop: an ingest-enabled dramserve on the
# UE artifact feeds live /v2 predictions into `dramfleet -policy
# threshold`, whose mitigation actions actuate the simulated fleet. The
# assertions are that the printed mitigation ledger is non-empty (the
# policy actually acted) and that two same-seed replays render the ledger
# byte-identically — the policy evaluation harness's determinism contract
# surviving a live HTTP predictor.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18080
addr_b1=127.0.0.1:18081
addr_b2=127.0.0.1:18082
addr_rt=127.0.0.1:18090
addr_ue=127.0.0.1:18083
addr_ue2=127.0.0.1:18084
addr_uert=127.0.0.1:18091
addr_ing=127.0.0.1:18085
addr_pol=127.0.0.1:18086
workdir=$(mktemp -d)
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/dramserve" ./cmd/dramserve
go build -o "$workdir/dramfleet" ./cmd/dramfleet
go build -o "$workdir/dramrouter" ./cmd/dramrouter
go build -o "$workdir/dramtrain" ./cmd/dramtrain
"$workdir/dramserve" -load internal/core/testdata/golden_v1.json.gz -addr "$addr" \
  2>"$workdir/serve.log" &
pid=$!
pids+=("$pid")

for _ in $(seq 1 100); do
  curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || { echo "dramserve died:"; cat "$workdir/serve.log"; exit 1; }
  sleep 0.1
done

fail() { echo "smoke: $1"; echo "--- response: $2"; exit 1; }

health=$(curl -fsS "http://$addr/healthz")
echo "$health" | grep -q '"generation":1' || fail "/healthz missing generation" "$health"
echo "$health" | grep -Eq '"fingerprint":"[a-z0-9]+:' || fail "/healthz missing fingerprint" "$health"

v1=$(curl -fsS -XPOST "http://$addr/v1/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"nw","trefp":1.173,"temp_c":60}')
echo "$v1" | grep -q '"wer_mean"' || fail "/v1/predict missing wer_mean" "$v1"
echo "$v1" | grep -q '"pue"' || fail "/v1/predict missing pue" "$v1"

v2=$(curl -fsS -XPOST "http://$addr/v2/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["pue"]}')
echo "$v2" | grep -q '"pue"' || fail "/v2/predict missing pue result" "$v2"
echo "$v2" | grep -q '"generation":1' || fail "/v2/predict missing generation" "$v2"
echo "$v2" | grep -Eq '"fingerprint":"[a-z0-9]+:' || fail "/v2/predict missing fingerprint" "$v2"
echo "$v2" | grep -q '"wer"' && fail "/v2 pue-only query answered wer" "$v2"

# A /v2 validation failure is a structured {code, field, message} error.
v2err=$(curl -sS -XPOST "http://$addr/v2/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"doom","trefp":1,"temp_c":60}')
echo "$v2err" | grep -q '"code":"unknown_workload"' || fail "/v2 error not structured" "$v2err"
echo "$v2err" | grep -q '"field":"workload"' || fail "/v2 error missing field" "$v2err"

# Wrong method: uniformly 405 with the Allow header.
hdrs=$(curl -sS -o /dev/null -D - "http://$addr/v2/predict")
echo "$hdrs" | head -1 | grep -q 405 || fail "GET /v2/predict not 405" "$hdrs"
echo "$hdrs" | grep -qi '^allow: POST' || fail "405 missing Allow header" "$hdrs"

# --- fleet burst: drive the server with the simulated datacenter stream.

# stats_target extracts one target's rollup counter from a /v2/stats body.
stats_target() {
  echo "$1" | sed -n 's/.*"targets":{\([^}]*\)}.*/\1/p' \
    | tr ',' '\n' | sed -n "s/.*\"$2\":\([0-9]*\).*/\1/p"
}

before=$(curl -fsS "http://$addr/v2/stats")
wer0=$(stats_target "$before" wer); pue0=$(stats_target "$before" pue)
[ -n "$wer0" ] && [ -n "$pue0" ] || fail "/v2/stats missing target rollup" "$before"

"$workdir/dramfleet" -addr "http://$addr" -seed 1 -qps 150 -duration 2s \
  >"$workdir/fleet.txt" 2>"$workdir/fleet.log" \
  || fail "dramfleet burst failed" "$(cat "$workdir/fleet.log")"

completed=$(sed -n 's/^completed \([0-9]*\)$/\1/p' "$workdir/fleet.txt")
[ -n "$completed" ] && [ "$completed" -gt 0 ] \
  || fail "fleet burst completed no queries" "$(cat "$workdir/fleet.txt")"
grep -Eq '^p99 [0-9]+\.[0-9]+ ms$' "$workdir/fleet.txt" \
  || fail "fleet report p99 not parseable" "$(cat "$workdir/fleet.txt")"

# The server's /v2/stats view must account for exactly the generator's
# completed queries, per requested target.
after=$(curl -fsS "http://$addr/v2/stats")
wer1=$(stats_target "$after" wer); pue1=$(stats_target "$after" pue)
[ "$((wer1 - wer0))" -eq "$completed" ] \
  || fail "server counted $((wer1 - wer0)) wer queries, generator completed $completed" "$after"
[ "$((pue1 - pue0))" -eq "$completed" ] \
  || fail "server counted $((pue1 - pue0)) pue queries, generator completed $completed" "$after"

# Determinism contract: the same seed replays byte-identically — the
# query stream always, and the whole report with timing disabled.
"$workdir/dramfleet" -addr "http://$addr" -seed 1 -n 40 -qps 400 -timing=false \
  -stream-out "$workdir/s1.jsonl" >"$workdir/r1.txt" 2>/dev/null \
  || fail "deterministic run 1 failed" "$(cat "$workdir/r1.txt")"
"$workdir/dramfleet" -addr "http://$addr" -seed 1 -n 40 -qps 400 -timing=false \
  -stream-out "$workdir/s2.jsonl" >"$workdir/r2.txt" 2>/dev/null \
  || fail "deterministic run 2 failed" "$(cat "$workdir/r2.txt")"
cmp -s "$workdir/s1.jsonl" "$workdir/s2.jsonl" \
  || fail "query streams differ for the same seed" "$(diff "$workdir/s1.jsonl" "$workdir/s2.jsonl" | head)"
cmp -s "$workdir/r1.txt" "$workdir/r2.txt" \
  || fail "fleet reports differ for the same seed" "$(diff "$workdir/r1.txt" "$workdir/r2.txt")"

# --- cluster tier: two backends behind dramrouter, same /v2 wire format.

"$workdir/dramserve" -load internal/core/testdata/golden_v1.json.gz -addr "$addr_b1" \
  2>"$workdir/serve_b1.log" &
pids+=($!)
"$workdir/dramserve" -load internal/core/testdata/golden_v1.json.gz -addr "$addr_b2" \
  2>"$workdir/serve_b2.log" &
pids+=($!)
"$workdir/dramrouter" -addr "$addr_rt" -backends "$addr_b1,$addr_b2" \
  -probe-interval 200ms 2>"$workdir/router.log" &
pids+=($!)

# The router answers /healthz 503 until its pool is probed healthy, but
# just after boot it may serve a pre-probe snapshot (backends provisionally
# healthy, fingerprints not yet learned), so the poll waits for the pool
# fingerprint to converge on the artifact fingerprint dramserve reported
# in act one — that is the agreement being asserted anyway.
fp_serve=$(echo "$health" | sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p')
rhealth=
for _ in $(seq 1 100); do
  rhealth=$(curl -fsS "http://$addr_rt/healthz" 2>/dev/null) \
    && echo "$rhealth" | grep -q "\"fingerprint\":\"$fp_serve\"" && break
  sleep 0.1
done
[ -n "$rhealth" ] || fail "router pool never became healthy" "$(cat "$workdir/router.log")"
echo "$rhealth" | grep -q '"status":"ok"' || fail "router /healthz not ok" "$rhealth"
echo "$rhealth" | grep -q '"healthy":2' || fail "router pool not fully healthy" "$rhealth"
echo "$rhealth" | grep -q '"fingerprint_skew":false' || fail "router pool skewed" "$rhealth"
echo "$rhealth" | grep -q "\"fingerprint\":\"$fp_serve\"" \
  || fail "router pool fingerprint disagrees with dramserve ($fp_serve)" "$rhealth"

# The routed /v2 surface is byte-compatible: same query, same answer shape.
rv2=$(curl -fsS -XPOST "http://$addr_rt/v2/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["pue"]}')
echo "$rv2" | grep -q '"pue"' || fail "routed /v2/predict missing pue result" "$rv2"
echo "$rv2" | grep -q "\"fingerprint\":\"$fp_serve\"" || fail "routed /v2 fingerprint mismatch" "$rv2"

# A fleet burst drives the router exactly like a single backend.
"$workdir/dramfleet" -addr "http://$addr_rt" -seed 5 -qps 150 -duration 2s \
  >"$workdir/fleet_rt.txt" 2>"$workdir/fleet_rt.log" \
  || fail "dramfleet burst through router failed" "$(cat "$workdir/fleet_rt.log")"
completed_rt=$(sed -n 's/^completed \([0-9]*\)$/\1/p' "$workdir/fleet_rt.txt")
[ -n "$completed_rt" ] && [ "$completed_rt" -gt 0 ] \
  || fail "routed fleet burst completed no queries" "$(cat "$workdir/fleet_rt.txt")"
grep -Eq '^p99 [0-9]+\.[0-9]+ ms$' "$workdir/fleet_rt.txt" \
  || fail "routed fleet report p99 not parseable" "$(cat "$workdir/fleet_rt.txt")"

# The router's own metrics account for the burst.
rmetrics=$(curl -fsS "http://$addr_rt/metrics")
echo "$rmetrics" | grep -q 'dramrouter_backends_healthy 2' \
  || fail "router metrics missing healthy pool" "$rmetrics"
echo "$rmetrics" | grep -Eq 'dramrouter_requests_total\{endpoint="/v2/predict",code="200"\} [1-9]' \
  || fail "router metrics missing routed requests" "$rmetrics"

# --- field-failure target: train with CE telemetry, serve ue_risk e2e.

"$workdir/dramtrain" -quick -scale 32 -ue-windows 24 -save "$workdir/ue.json.gz" \
  >"$workdir/train.txt" 2>"$workdir/train.log" \
  || fail "dramtrain with -ue-windows failed" "$(cat "$workdir/train.log")"
grep -q 'UE-risk classification, leave-one-server-out' "$workdir/train.txt" \
  || fail "dramtrain report missing the UE-risk eval" "$(cat "$workdir/train.txt")"

# The classifier evaluation is bit-deterministic at any worker count:
# re-evaluating the saved artifact at -workers 1 and 4 must print the
# same report byte for byte.
"$workdir/dramtrain" -load "$workdir/ue.json.gz" -workers 1 >"$workdir/eval_w1.txt" 2>/dev/null \
  || fail "eval at -workers 1 failed" "$(cat "$workdir/eval_w1.txt")"
"$workdir/dramtrain" -load "$workdir/ue.json.gz" -workers 4 >"$workdir/eval_w4.txt" 2>/dev/null \
  || fail "eval at -workers 4 failed" "$(cat "$workdir/eval_w4.txt")"
cmp -s "$workdir/eval_w1.txt" "$workdir/eval_w4.txt" \
  || fail "classifier eval differs across worker counts" "$(diff "$workdir/eval_w1.txt" "$workdir/eval_w4.txt")"

"$workdir/dramserve" -load "$workdir/ue.json.gz" -addr "$addr_ue" \
  2>"$workdir/serve_ue.log" &
pid_ue=$!
pids+=("$pid_ue")
for _ in $(seq 1 100); do
  curl -fsS "http://$addr_ue/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid_ue" 2>/dev/null || { echo "ue dramserve died:"; cat "$workdir/serve_ue.log"; exit 1; }
  sleep 0.1
done

# The UE artifact advertises the telemetry target and its row count.
uehealth=$(curl -fsS "http://$addr_ue/healthz")
echo "$uehealth" | grep -q '"ue_risk"' || fail "ue /healthz does not advertise ue_risk" "$uehealth"
echo "$uehealth" | grep -Eq '"uer_rows":[1-9]' || fail "ue /healthz missing uer_rows" "$uehealth"

ce_query='{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["ue_risk"],
  "ce":[{"t":1,"row":42,"col":3,"bank":0,"rank":1},
        {"t":1.2,"row":42,"col":9,"bank":0,"rank":1,"bits":2},
        {"t":1.3,"row":42,"col":9,"bank":0,"rank":1,"bits":2}]}'
uev2=$(curl -fsS -XPOST "http://$addr_ue/v2/predict" -H 'Content-Type: application/json' \
  -d "$ce_query")
echo "$uev2" | grep -q '"ue_risk"' || fail "/v2 ue_risk query unanswered" "$uev2"
echo "$uev2" | grep -q '"wer"' && fail "/v2 ue_risk-only query answered wer" "$uev2"

# The same query twice answers byte-identically modulo elapsed_ms.
uev2b=$(curl -fsS -XPOST "http://$addr_ue/v2/predict" -H 'Content-Type: application/json' \
  -d "$ce_query")
strip_ms() { echo "$1" | sed 's/"elapsed_ms":[0-9.e+-]*/"elapsed_ms":0/'; }
[ "$(strip_ms "$uev2")" = "$(strip_ms "$uev2b")" ] \
  || fail "ue_risk prediction not deterministic" "$uev2 vs $uev2b"

# A CE-bearing query with no explicit targets joins ue_risk into the
# default selection alongside wer and pue.
uedef=$(curl -fsS -XPOST "http://$addr_ue/v2/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"nw","trefp":1.173,"temp_c":60,"ce":[{"t":1,"row":3,"col":4,"bank":1,"rank":0}]}')
for tgt in wer pue ue_risk; do
  echo "$uedef" | grep -q "\"$tgt\"" || fail "CE-bearing default selection missing $tgt" "$uedef"
done

# The server counts the new (target, kind, input set) model triple.
uestats=$(curl -fsS "http://$addr_ue/v2/stats")
uer_count=$(stats_target "$uestats" ue_risk)
[ -n "$uer_count" ] && [ "$uer_count" -ge 3 ] \
  || fail "/v2/stats ue_risk rollup is ${uer_count:-missing}, want >= 3" "$uestats"
echo "$uestats" | grep -q '"target":"ue_risk","kind":"KNN","input_set":1' \
  || fail "/v2/stats missing the (ue_risk, KNN, 1) model entry" "$uestats"

# The same queries route unchanged through dramrouter: a ue_risk query is
# hashed to its owning backend, a no-targets CE query is forwarded whole
# so the backend applies its own default selection.
"$workdir/dramserve" -load "$workdir/ue.json.gz" -addr "$addr_ue2" \
  2>"$workdir/serve_ue2.log" &
pids+=($!)
"$workdir/dramrouter" -addr "$addr_uert" -backends "$addr_ue,$addr_ue2" \
  -probe-interval 200ms 2>"$workdir/router_ue.log" &
pids+=($!)
fp_ue=$(echo "$uehealth" | sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p')
for _ in $(seq 1 100); do
  curl -fsS "http://$addr_uert/healthz" 2>/dev/null | grep -q "\"fingerprint\":\"$fp_ue\"" && break
  sleep 0.1
done
ruev2=$(curl -fsS -XPOST "http://$addr_uert/v2/predict" -H 'Content-Type: application/json' \
  -d "$ce_query")
echo "$ruev2" | grep -q '"ue_risk"' || fail "routed ue_risk query unanswered" "$ruev2"
[ "$(strip_ms "$ruev2")" = "$(strip_ms "$uev2")" ] \
  || fail "routed ue_risk answer differs from direct" "$ruev2 vs $uev2"
ruedef=$(curl -fsS -XPOST "http://$addr_uert/v2/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"nw","trefp":1.173,"temp_c":60,"ce":[{"t":1,"row":3,"col":4,"bank":1,"rank":0}]}')
for tgt in wer pue ue_risk; do
  echo "$ruedef" | grep -q "\"$tgt\"" || fail "routed default selection missing $tgt" "$ruedef"
done

# --- the data loop: ingest burst -> drift/row trigger -> background
# retrain -> new fingerprinted generation, with zero failed predicts.

# Retrain rewrites the -load artifact in place, so the loop runs on its
# own copy — never on the UE artifact the earlier acts still serve.
cp "$workdir/ue.json.gz" "$workdir/loop.json.gz"
"$workdir/dramserve" -load "$workdir/loop.json.gz" -addr "$addr_ing" \
  -ingest -ingest-capacity 4096 -retrain-rows 96 \
  -drift-threshold 0.05 -drift-min-rows 24 \
  2>"$workdir/serve_ing.log" &
pid_ing=$!
pids+=("$pid_ing")
for _ in $(seq 1 100); do
  curl -fsS "http://$addr_ing/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid_ing" 2>/dev/null || { echo "ingest dramserve died:"; cat "$workdir/serve_ing.log"; exit 1; }
  sleep 0.1
done
fp_loop0=$(curl -fsS "http://$addr_ing/healthz" | sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p')

# The fleet burst both predicts and reports ground truth back; 120 rows
# cross the -retrain-rows 96 trigger mid-run.
"$workdir/dramfleet" -addr "http://$addr_ing" -ingest -seed 3 -n 120 -qps 400 \
  >"$workdir/fleet_ing.txt" 2>"$workdir/fleet_ing.log" \
  || fail "dramfleet ingest burst failed" "$(cat "$workdir/fleet_ing.log")"
grep -q '^failed    0$' "$workdir/fleet_ing.txt" \
  || fail "predicts failed during the ingest run" "$(cat "$workdir/fleet_ing.txt")"
ingested=$(sed -n 's/^ingested  \([0-9]*\)$/\1/p' "$workdir/fleet_ing.txt")
[ -n "$ingested" ] && [ "$ingested" -ge 96 ] \
  || fail "fleet reported ${ingested:-no} ingested observations, want >= 96" "$(cat "$workdir/fleet_ing.txt")"

# The background retrain publishes a new generation with a new
# fingerprint, and rewrites the artifact on disk to match.
fp_loop1=
for _ in $(seq 1 150); do
  ih=$(curl -fsS "http://$addr_ing/healthz" 2>/dev/null) || { sleep 0.2; continue; }
  fp_loop1=$(echo "$ih" | sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p')
  if [ -n "$fp_loop1" ] && [ "$fp_loop1" != "$fp_loop0" ]; then
    echo "$ih" | grep -Eq '"generation":([2-9]|[1-9][0-9]+)' && break
  fi
  fp_loop1=
  sleep 0.2
done
[ -n "$fp_loop1" ] \
  || fail "ingest retrain never published a new generation" "$(cat "$workdir/serve_ing.log")"

# One more predict on the fresh generation must carry the new fingerprint.
postv2=$(curl -fsS -XPOST "http://$addr_ing/v2/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["pue"]}')
echo "$postv2" | grep -q "\"fingerprint\":\"$fp_loop1\"" \
  || fail "post-retrain predict not on the new artifact" "$postv2"

# The ingest counters are coherent in both expositions.
istats=$(curl -fsS "http://$addr_ing/v2/stats")
echo "$istats" | grep -q '"ingest":{' || fail "/v2/stats missing ingest section" "$istats"
echo "$istats" | grep -Eq '"retrains":[1-9]' || fail "/v2/stats counts no retrain" "$istats"
imetrics=$(curl -fsS "http://$addr_ing/metrics")
echo "$imetrics" | grep -Eq 'dramserve_ingest_accepted_total [1-9]' \
  || fail "metrics missing ingest accepted counter" "$imetrics"
echo "$imetrics" | grep -Eq 'dramserve_retrain_total [1-9]' \
  || fail "metrics missing retrain counter" "$imetrics"

# A manual retrain answers the generation/fingerprint it serves (idle
# buffer: swapped=false is fine; a 409 means a background retrain is
# still folding the leftover rows — also a coherent answer).
rt=$(curl -sS -XPOST "http://$addr_ing/v2/retrain")
echo "$rt" | grep -Eq '"fingerprint"|"retrain_in_progress"' \
  || fail "/v2/retrain did not answer coherently" "$rt"

# --- the control loop: live predictions drive the mitigation policy,
# and the scored ledger replays byte-identically at equal seed.

# The policy loop needs stable predictions across both replays, so it
# gets its own server on its own artifact copy: -policy sends no ingest
# traffic, hence no retrain can swap the generation mid-replay.
cp "$workdir/ue.json.gz" "$workdir/policy.json.gz"
"$workdir/dramserve" -load "$workdir/policy.json.gz" -addr "$addr_pol" \
  -ingest -ingest-capacity 4096 \
  2>"$workdir/serve_pol.log" &
pid_pol=$!
pids+=("$pid_pol")
for _ in $(seq 1 100); do
  curl -fsS "http://$addr_pol/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid_pol" 2>/dev/null || { echo "policy dramserve died:"; cat "$workdir/serve_pol.log"; exit 1; }
  sleep 0.1
done

"$workdir/dramfleet" -addr "http://$addr_pol" -policy threshold -seed 1 -ticks 8 \
  >"$workdir/pol1.txt" 2>"$workdir/pol1.log" \
  || fail "policy run 1 failed" "$(cat "$workdir/pol1.log")"
grep -q '^mitigation ledger: policy=threshold seed=1' "$workdir/pol1.txt" \
  || fail "policy report missing the mitigation ledger" "$(cat "$workdir/pol1.txt")"
# Non-empty ledger: the loop predicted on every tick and the policy
# actually issued at least one action against the fleet.
grep -Eq '^  predict +calls=[1-9][0-9]* errors=0$' "$workdir/pol1.txt" \
  || fail "policy loop completed no clean predictions" "$(cat "$workdir/pol1.txt")"
grep -Eq '^  actions +retune=[0-9]+ offline=[0-9]+ migrate=[0-9]+$' "$workdir/pol1.txt" \
  || fail "policy report missing the action counts" "$(cat "$workdir/pol1.txt")"
grep -Eq 'retune=[1-9]|offline=[1-9]|migrate=[1-9]' "$workdir/pol1.txt" \
  || fail "threshold policy never acted" "$(cat "$workdir/pol1.txt")"
grep -Eq '^  checksum +[0-9a-f]{16}$' "$workdir/pol1.txt" \
  || fail "policy report missing the ledger checksum" "$(cat "$workdir/pol1.txt")"

# Same seed, same artifact: the whole ledger replays byte-identically.
"$workdir/dramfleet" -addr "http://$addr_pol" -policy threshold -seed 1 -ticks 8 \
  >"$workdir/pol2.txt" 2>"$workdir/pol2.log" \
  || fail "policy run 2 failed" "$(cat "$workdir/pol2.log")"
cmp -s "$workdir/pol1.txt" "$workdir/pol2.txt" \
  || fail "mitigation ledgers differ for the same seed" "$(diff "$workdir/pol1.txt" "$workdir/pol2.txt")"

echo "smoke OK"
