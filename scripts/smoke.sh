#!/usr/bin/env bash
# Smoke-tests the deployed serving surface end to end: builds dramserve
# and dramfleet, boots the server against the checked-in golden artifact,
# and exercises /healthz, /v1/predict and /v2/predict over real HTTP —
# asserting the artifact generation and fingerprint are surfaced, both
# predict surfaces answer, and the uniform method contract (405 + Allow)
# holds. It then aims a dramfleet burst at the server, asserts a
# parseable latency-percentile report, cross-checks the generator's
# completed-query count against the server's /v2/stats counters, and
# replays the same seed twice to prove the report is byte-identical. CI
# runs this after the unit suite; it is also runnable locally:
# scripts/smoke.sh
#
# A second act boots the cluster tier: two more dramserve backends fronted
# by dramrouter, asserting the pool reaches fingerprint agreement and that
# a dramfleet burst drives the /v2 surface through the router unchanged.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18080
addr_b1=127.0.0.1:18081
addr_b2=127.0.0.1:18082
addr_rt=127.0.0.1:18090
workdir=$(mktemp -d)
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/dramserve" ./cmd/dramserve
go build -o "$workdir/dramfleet" ./cmd/dramfleet
go build -o "$workdir/dramrouter" ./cmd/dramrouter
"$workdir/dramserve" -load internal/core/testdata/golden_v1.json.gz -addr "$addr" \
  2>"$workdir/serve.log" &
pid=$!
pids+=("$pid")

for _ in $(seq 1 100); do
  curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || { echo "dramserve died:"; cat "$workdir/serve.log"; exit 1; }
  sleep 0.1
done

fail() { echo "smoke: $1"; echo "--- response: $2"; exit 1; }

health=$(curl -fsS "http://$addr/healthz")
echo "$health" | grep -q '"generation":1' || fail "/healthz missing generation" "$health"
echo "$health" | grep -Eq '"fingerprint":"[a-z0-9]+:' || fail "/healthz missing fingerprint" "$health"

v1=$(curl -fsS -XPOST "http://$addr/v1/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"nw","trefp":1.173,"temp_c":60}')
echo "$v1" | grep -q '"wer_mean"' || fail "/v1/predict missing wer_mean" "$v1"
echo "$v1" | grep -q '"pue"' || fail "/v1/predict missing pue" "$v1"

v2=$(curl -fsS -XPOST "http://$addr/v2/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["pue"]}')
echo "$v2" | grep -q '"pue"' || fail "/v2/predict missing pue result" "$v2"
echo "$v2" | grep -q '"generation":1' || fail "/v2/predict missing generation" "$v2"
echo "$v2" | grep -Eq '"fingerprint":"[a-z0-9]+:' || fail "/v2/predict missing fingerprint" "$v2"
echo "$v2" | grep -q '"wer"' && fail "/v2 pue-only query answered wer" "$v2"

# A /v2 validation failure is a structured {code, field, message} error.
v2err=$(curl -sS -XPOST "http://$addr/v2/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"doom","trefp":1,"temp_c":60}')
echo "$v2err" | grep -q '"code":"unknown_workload"' || fail "/v2 error not structured" "$v2err"
echo "$v2err" | grep -q '"field":"workload"' || fail "/v2 error missing field" "$v2err"

# Wrong method: uniformly 405 with the Allow header.
hdrs=$(curl -sS -o /dev/null -D - "http://$addr/v2/predict")
echo "$hdrs" | head -1 | grep -q 405 || fail "GET /v2/predict not 405" "$hdrs"
echo "$hdrs" | grep -qi '^allow: POST' || fail "405 missing Allow header" "$hdrs"

# --- fleet burst: drive the server with the simulated datacenter stream.

# stats_target extracts one target's rollup counter from a /v2/stats body.
stats_target() {
  echo "$1" | sed -n 's/.*"targets":{\([^}]*\)}.*/\1/p' \
    | tr ',' '\n' | sed -n "s/.*\"$2\":\([0-9]*\).*/\1/p"
}

before=$(curl -fsS "http://$addr/v2/stats")
wer0=$(stats_target "$before" wer); pue0=$(stats_target "$before" pue)
[ -n "$wer0" ] && [ -n "$pue0" ] || fail "/v2/stats missing target rollup" "$before"

"$workdir/dramfleet" -addr "http://$addr" -seed 1 -qps 150 -duration 2s \
  >"$workdir/fleet.txt" 2>"$workdir/fleet.log" \
  || fail "dramfleet burst failed" "$(cat "$workdir/fleet.log")"

completed=$(sed -n 's/^completed \([0-9]*\)$/\1/p' "$workdir/fleet.txt")
[ -n "$completed" ] && [ "$completed" -gt 0 ] \
  || fail "fleet burst completed no queries" "$(cat "$workdir/fleet.txt")"
grep -Eq '^p99 [0-9]+\.[0-9]+ ms$' "$workdir/fleet.txt" \
  || fail "fleet report p99 not parseable" "$(cat "$workdir/fleet.txt")"

# The server's /v2/stats view must account for exactly the generator's
# completed queries, per requested target.
after=$(curl -fsS "http://$addr/v2/stats")
wer1=$(stats_target "$after" wer); pue1=$(stats_target "$after" pue)
[ "$((wer1 - wer0))" -eq "$completed" ] \
  || fail "server counted $((wer1 - wer0)) wer queries, generator completed $completed" "$after"
[ "$((pue1 - pue0))" -eq "$completed" ] \
  || fail "server counted $((pue1 - pue0)) pue queries, generator completed $completed" "$after"

# Determinism contract: the same seed replays byte-identically — the
# query stream always, and the whole report with timing disabled.
"$workdir/dramfleet" -addr "http://$addr" -seed 1 -n 40 -qps 400 -timing=false \
  -stream-out "$workdir/s1.jsonl" >"$workdir/r1.txt" 2>/dev/null \
  || fail "deterministic run 1 failed" "$(cat "$workdir/r1.txt")"
"$workdir/dramfleet" -addr "http://$addr" -seed 1 -n 40 -qps 400 -timing=false \
  -stream-out "$workdir/s2.jsonl" >"$workdir/r2.txt" 2>/dev/null \
  || fail "deterministic run 2 failed" "$(cat "$workdir/r2.txt")"
cmp -s "$workdir/s1.jsonl" "$workdir/s2.jsonl" \
  || fail "query streams differ for the same seed" "$(diff "$workdir/s1.jsonl" "$workdir/s2.jsonl" | head)"
cmp -s "$workdir/r1.txt" "$workdir/r2.txt" \
  || fail "fleet reports differ for the same seed" "$(diff "$workdir/r1.txt" "$workdir/r2.txt")"

# --- cluster tier: two backends behind dramrouter, same /v2 wire format.

"$workdir/dramserve" -load internal/core/testdata/golden_v1.json.gz -addr "$addr_b1" \
  2>"$workdir/serve_b1.log" &
pids+=($!)
"$workdir/dramserve" -load internal/core/testdata/golden_v1.json.gz -addr "$addr_b2" \
  2>"$workdir/serve_b2.log" &
pids+=($!)
"$workdir/dramrouter" -addr "$addr_rt" -backends "$addr_b1,$addr_b2" \
  -probe-interval 200ms 2>"$workdir/router.log" &
pids+=($!)

# The router answers /healthz 503 until its pool is probed healthy and
# fingerprint-agreed, so polling with curl -f asserts convergence itself.
rhealth=
for _ in $(seq 1 100); do
  rhealth=$(curl -fsS "http://$addr_rt/healthz" 2>/dev/null) && break
  sleep 0.1
done
[ -n "$rhealth" ] || fail "router pool never became healthy" "$(cat "$workdir/router.log")"
echo "$rhealth" | grep -q '"status":"ok"' || fail "router /healthz not ok" "$rhealth"
echo "$rhealth" | grep -q '"healthy":2' || fail "router pool not fully healthy" "$rhealth"
echo "$rhealth" | grep -q '"fingerprint_skew":false' || fail "router pool skewed" "$rhealth"

# Fingerprint agreement: the pool fingerprint the router reports is the
# same artifact fingerprint the single dramserve reported in act one.
fp_serve=$(echo "$health" | sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p')
echo "$rhealth" | grep -q "\"fingerprint\":\"$fp_serve\"" \
  || fail "router pool fingerprint disagrees with dramserve ($fp_serve)" "$rhealth"

# The routed /v2 surface is byte-compatible: same query, same answer shape.
rv2=$(curl -fsS -XPOST "http://$addr_rt/v2/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["pue"]}')
echo "$rv2" | grep -q '"pue"' || fail "routed /v2/predict missing pue result" "$rv2"
echo "$rv2" | grep -q "\"fingerprint\":\"$fp_serve\"" || fail "routed /v2 fingerprint mismatch" "$rv2"

# A fleet burst drives the router exactly like a single backend.
"$workdir/dramfleet" -addr "http://$addr_rt" -seed 5 -qps 150 -duration 2s \
  >"$workdir/fleet_rt.txt" 2>"$workdir/fleet_rt.log" \
  || fail "dramfleet burst through router failed" "$(cat "$workdir/fleet_rt.log")"
completed_rt=$(sed -n 's/^completed \([0-9]*\)$/\1/p' "$workdir/fleet_rt.txt")
[ -n "$completed_rt" ] && [ "$completed_rt" -gt 0 ] \
  || fail "routed fleet burst completed no queries" "$(cat "$workdir/fleet_rt.txt")"
grep -Eq '^p99 [0-9]+\.[0-9]+ ms$' "$workdir/fleet_rt.txt" \
  || fail "routed fleet report p99 not parseable" "$(cat "$workdir/fleet_rt.txt")"

# The router's own metrics account for the burst.
rmetrics=$(curl -fsS "http://$addr_rt/metrics")
echo "$rmetrics" | grep -q 'dramrouter_backends_healthy 2' \
  || fail "router metrics missing healthy pool" "$rmetrics"
echo "$rmetrics" | grep -Eq 'dramrouter_requests_total\{endpoint="/v2/predict",code="200"\} [1-9]' \
  || fail "router metrics missing routed requests" "$rmetrics"

echo "smoke OK"
