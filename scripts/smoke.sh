#!/usr/bin/env bash
# Smoke-tests the deployed serving surface end to end: builds dramserve,
# boots it against the checked-in golden artifact, and exercises /healthz,
# /v1/predict and /v2/predict over real HTTP — asserting the artifact
# generation and fingerprint are surfaced, both predict surfaces answer,
# and the uniform method contract (405 + Allow) holds. CI runs this after
# the unit suite; it is also runnable locally: scripts/smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18080
workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/dramserve" ./cmd/dramserve
"$workdir/dramserve" -load internal/core/testdata/golden_v1.json.gz -addr "$addr" \
  2>"$workdir/serve.log" &
pid=$!

for _ in $(seq 1 100); do
  curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || { echo "dramserve died:"; cat "$workdir/serve.log"; exit 1; }
  sleep 0.1
done

fail() { echo "smoke: $1"; echo "--- response: $2"; exit 1; }

health=$(curl -fsS "http://$addr/healthz")
echo "$health" | grep -q '"generation":1' || fail "/healthz missing generation" "$health"
echo "$health" | grep -Eq '"fingerprint":"[a-z0-9]+:' || fail "/healthz missing fingerprint" "$health"

v1=$(curl -fsS -XPOST "http://$addr/v1/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"nw","trefp":1.173,"temp_c":60}')
echo "$v1" | grep -q '"wer_mean"' || fail "/v1/predict missing wer_mean" "$v1"
echo "$v1" | grep -q '"pue"' || fail "/v1/predict missing pue" "$v1"

v2=$(curl -fsS -XPOST "http://$addr/v2/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["pue"]}')
echo "$v2" | grep -q '"pue"' || fail "/v2/predict missing pue result" "$v2"
echo "$v2" | grep -q '"generation":1' || fail "/v2/predict missing generation" "$v2"
echo "$v2" | grep -Eq '"fingerprint":"[a-z0-9]+:' || fail "/v2/predict missing fingerprint" "$v2"
echo "$v2" | grep -q '"wer"' && fail "/v2 pue-only query answered wer" "$v2"

# A /v2 validation failure is a structured {code, field, message} error.
v2err=$(curl -sS -XPOST "http://$addr/v2/predict" -H 'Content-Type: application/json' \
  -d '{"workload":"doom","trefp":1,"temp_c":60}')
echo "$v2err" | grep -q '"code":"unknown_workload"' || fail "/v2 error not structured" "$v2err"
echo "$v2err" | grep -q '"field":"workload"' || fail "/v2 error missing field" "$v2err"

# Wrong method: uniformly 405 with the Allow header.
hdrs=$(curl -sS -o /dev/null -D - "http://$addr/v2/predict")
echo "$hdrs" | head -1 | grep -q 405 || fail "GET /v2/predict not 405" "$hdrs"
echo "$hdrs" | grep -qi '^allow: POST' || fail "405 missing Allow header" "$hdrs"

echo "smoke OK"
